"""Command-line interface: run paper experiments without writing code.

Usage::

    python -m repro.cli list
    python -m repro.cli fig11 [--scale 0.5]
    python -m repro.cli fig12 --benchmark mcf
    python -m repro.cli covert --key 0x2AAAAAAA --bits 32 [--no-shaping]
    python -m repro.cli mi
    python -m repro.cli tradeoff --benchmark apache --jobs 4
    python -m repro.cli fig13 --adversary gcc --victim mcf
    python -m repro.cli sweep tradeoff --jobs 4 --cache-dir .repro-cache
    python -m repro.cli cache ls --cache-dir .repro-cache
    python -m repro.cli lint [paths...] [--format json]

Each subcommand runs the corresponding experiment driver from
:mod:`repro.analysis.experiments` and prints the same rows/series the
paper's figure reports.  ``--scale`` shrinks the default run length
for quick looks.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.experiments import (
    ExperimentDefaults,
    bdc_comparison,
    covert_channel_experiment,
    measure_mi_suite,
    reqc_speedup_experiment,
    run_mix,
    tradeoff_sweep,
)
from repro.analysis.format import ascii_series, format_distribution, format_table
from repro.core.bins import BinConfiguration
from repro.obs import ALL_CATEGORIES, ObservabilityConfig
from repro.sim.system import RequestShapingPlan, ResponseShapingPlan, SystemBuilder
from repro.workloads.spec import BENCHMARK_NAMES

_EXPERIMENTS = {
    "fig11": "shape a benchmark's requests onto the DESIRED staircase",
    "fig12": "ReqC speedup over a constant-rate shaper",
    "fig13": "BDC vs TP vs FS program average slowdown",
    "covert": "Algorithm-1 covert channel attack (Figs 14/15)",
    "mi": "mutual-information table (section IV-B2)",
    "tradeoff": "security/performance sweep (Figure 2)",
    "detect": "attacker-zoo detectability lab (MI / AUC / XCorr / spectral)",
    "calibrate": "measured workload characteristics (trace substitution)",
    "trace": "run a BDC-shaped mix with event tracing; export Chrome JSON",
    "stats": "run with metrics sampling and the live shaping monitor",
    "run": "run a BDC-shaped mix with checkpoints and a stall watchdog",
    "resume": "restore a checkpoint and continue the run bit-identically",
    "faults": "run a fault-injection scenario (repro.resilience harness)",
    "sweep": "run a parameter sweep across worker processes (--jobs)",
    "dispatch": "run a sweep worker host / inspect a dispatch ledger",
    "cache": "inspect/prune/clear the sweep result cache",
    "serve": "serve live /metrics, /healthz and /monitor during a run",
    "profile": "engine self-profile: per-station work and skip-span rollup",
}

#: Sweeps runnable via ``repro sweep <name>``; each maps to a driver
#: accepting (defaults, executor) — results print as canonical JSON so
#: ``--jobs 1`` and ``--jobs N`` outputs can be byte-compared.
_SWEEP_NAMES = (
    "tradeoff",
    "detect",
    "scalability",
    "tp-turn",
    "fs-interval",
    "noc-latency",
    "mesh-position",
)


def _defaults(args) -> ExperimentDefaults:
    return ExperimentDefaults().scaled(args.scale)


def _cmd_list(_args) -> int:
    print(format_table(
        ["experiment", "description"],
        [[name, desc] for name, desc in _EXPERIMENTS.items()],
    ))
    return 0


def _cmd_fig11(args) -> int:
    desired = BinConfiguration((10, 9, 8, 7, 6, 5, 4, 3, 2, 1))
    defaults = _defaults(args)
    report = run_mix(
        [args.benchmark], defaults,
        request_plans={
            0: RequestShapingPlan(
                config=desired, spec=defaults.spec, strict_binning=True
            )
        },
    )
    stats = report.core(0)
    print(f"benchmark: {args.benchmark}")
    print("intrinsic:",
          format_distribution(stats.request_intrinsic.counts))
    print("shaped:   ",
          format_distribution(stats.request_shaped.counts))
    print("DESIRED:  ", format_distribution(desired.credits))
    tv = 0.5 * sum(
        abs(a - b)
        for a, b in zip(stats.request_shaped.frequencies(),
                        desired.normalized())
    )
    print(f"TV distance to DESIRED: {tv:.4f}")
    return 0


def _cmd_fig12(args) -> int:
    benchmarks = [args.benchmark] if args.benchmark else list(BENCHMARK_NAMES)
    rows = []
    for bench in benchmarks:
        result = reqc_speedup_experiment(bench, _defaults(args))
        rows.append([bench, result["cs_ipc"], result["camouflage_ipc"],
                     result["speedup"]])
    print(format_table(
        ["benchmark", "cs_ipc", "camouflage_ipc", "speedup"], rows
    ))
    return 0


def _cmd_fig13(args) -> int:
    result = bdc_comparison(args.adversary, args.victim, _defaults(args),
                            tune=args.tune)
    print(format_table(
        ["technique", "avg slowdown"],
        [
            ["temporal partitioning", result["tp_slowdown"]],
            ["fixed service + banks", result["fs_slowdown"]],
            ["camouflage (BDC)", result["camouflage_slowdown"]],
        ],
    ))
    return 0


def _cmd_covert(args) -> int:
    key = int(args.key, 0)
    result = covert_channel_experiment(
        key, bits=args.bits, shaped=not args.no_shaping,
        pulse_cycles=args.pulse, defaults=_defaults(args),
    )
    counts = [float(c) for c in result["window_counts"]]
    print(f"key: {key:#x} ({args.bits} bits), "
          f"shaping: {'off' if args.no_shaping else 'on'}")
    print("traffic/pulse:", ascii_series(counts, width=args.bits))
    print("key bits:     ", "".join(map(str, result["key_bits"])))
    print("decoded bits: ", "".join(map(str, result["decoded_bits"])))
    print(f"bit error rate: {result['bit_error_rate']:.3f} "
          "(0 = fully leaked, 0.5 = chance)")
    return 0


def _cmd_mi(args) -> int:
    results = measure_mi_suite(defaults=_defaults(args))
    rows = [
        [name, values["paired"], values["windowed"]]
        for name, values in results.items()
    ]
    print(format_table(
        ["scheme", "paired_mi_bits", "windowed_mi_bits"], rows, precision=4
    ))
    return 0


def _cmd_calibrate(args) -> int:
    from repro.analysis.calibration import (
        calibrate_suite,
        check_substitution_claims,
    )

    benchmarks = [args.benchmark] if args.benchmark else None
    calibrations = calibrate_suite(_defaults(args), benchmarks)
    rows = [
        [c.name, c.ipc, c.llc_mpki, c.requests_per_kilocycle,
         c.row_hit_rate, c.burstiness]
        for c in sorted(calibrations.values(),
                        key=lambda c: -c.requests_per_kilocycle)
    ]
    print(format_table(
        ["benchmark", "ipc", "llc_mpki", "req/kcycle", "row_hit_rate",
         "burstiness"],
        rows,
    ))
    if benchmarks is None:
        print()
        claims = check_substitution_claims(calibrations)
        print(format_table(
            ["substitution claim", "held"],
            [[claim, held] for claim, held in claims.items()],
        ))
    return 0


def _cmd_tradeoff(args) -> int:
    points = tradeoff_sweep(
        args.benchmark, _defaults(args),
        jobs=args.jobs, cache_dir=args.cache_dir,
    )
    print(format_table(
        ["config", "ipc", "mi_bits", "auc", "xcorr", "spectral", "digest"],
        [
            [p["label"], p["ipc"], p["mi"], p["auc"], p["xcorr"],
             p["spectral"], p["digest"]]
            for p in points
        ],
    ))
    return 0


def _cmd_detect(args) -> int:
    import json as json_module

    from repro.analysis.experiments import detect_suite
    from repro.common.util import canonical_doc

    doc = detect_suite(
        args.benchmark, _defaults(args),
        jobs=args.jobs, cache_dir=args.cache_dir,
    )
    # Canonical JSON on stdout: repeated runs and different --jobs
    # values must byte-compare (the CI detect-smoke check); chatter
    # stays on stderr.
    text = json_module.dumps(canonical_doc(doc), sort_keys=True, indent=2)
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"detect report written to {args.out}", file=sys.stderr)
    return 0


def _cmd_sweep(args) -> int:
    import json as json_module

    from repro.analysis.experiments import detect_suite, scalability_experiment
    from repro.analysis.sweeps import (
        fs_interval_sweep,
        mesh_position_leakage,
        noc_latency_sweep,
        tp_turn_length_sweep,
    )
    from repro.common.util import canonical_doc
    from repro.parallel import SweepExecutor

    defaults = _defaults(args)
    dispatch = None
    if args.hosts:
        from repro.parallel.dispatch import DispatchCoordinator

        dispatch = DispatchCoordinator(
            args.hosts,
            lease_seconds=args.lease_seconds,
            ledger=args.ledger,
        )
    elif args.ledger:
        raise SystemExit("--ledger requires --hosts")
    executor = SweepExecutor(
        jobs=args.jobs, seed=defaults.seed, cache=args.cache_dir,
        dispatch=dispatch,
    )
    server = None
    if args.serve:
        from repro.obs.server import MetricsServer

        # Server chatter goes to stderr: sweep stdout stays canonical
        # JSON so `--jobs 1` / `--jobs N` outputs byte-compare.
        server = MetricsServer(
            host=args.serve_host, port=args.serve_port
        ).start()
        print(f"serving merged sweep metrics at {server.url}",
              file=sys.stderr)
    drivers = {
        "tradeoff": lambda: tradeoff_sweep(
            args.benchmark or "apache", defaults, executor=executor
        ),
        "detect": lambda: detect_suite(
            args.benchmark or "apache", defaults, executor=executor
        ),
        "scalability": lambda: scalability_experiment(
            args.benchmark or "gcc", defaults, executor=executor
        ),
        "tp-turn": lambda: tp_turn_length_sweep(
            defaults=defaults, executor=executor
        ),
        "fs-interval": lambda: fs_interval_sweep(
            defaults=defaults, executor=executor
        ),
        "noc-latency": lambda: noc_latency_sweep(
            args.benchmark or "mcf", defaults, executor=executor
        ),
        "mesh-position": lambda: mesh_position_leakage(
            defaults=defaults, executor=executor
        ),
    }
    result = drivers[args.name]()
    # Canonical JSON on stdout: `repro sweep X --jobs 1` and `--jobs 4`
    # outputs must be byte-identical (the CI parallel-smoke check).
    print(json_module.dumps(
        canonical_doc(result), sort_keys=True, indent=2
    ))
    print(
        f"tasks: run={executor.tasks_run} cached={executor.tasks_cached} "
        f"retries={executor.retries}",
        file=sys.stderr,
    )
    if dispatch is not None:
        counters = dispatch.registry.as_dict()
        print(
            "dispatch: "
            f"hosts={int(counters['dispatch.hosts_configured'])} "
            f"completed={int(counters['dispatch.shards_completed'])} "
            f"cached={int(counters['dispatch.cached_shards'])} "
            f"redispatched={int(counters['dispatch.redispatches'])} "
            f"degraded={str(dispatch.degraded).lower()}",
            file=sys.stderr,
        )
        dispatch.close()
    if args.metrics_out:
        from repro.obs.export import render_openmetrics

        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(render_openmetrics(executor.merged_registry()))
        print(f"merged exposition written to {args.metrics_out}",
              file=sys.stderr)
    if args.dispatch_log:
        from repro.obs import diag
        from repro.obs.events import CATEGORY_DISPATCH

        with open(args.dispatch_log, "w", encoding="utf-8") as fh:
            for event in diag.recent(category=CATEGORY_DISPATCH):
                fh.write(json_module.dumps(
                    event.as_jsonl_obj(), sort_keys=True
                ) + "\n")
        print(f"dispatch event log written to {args.dispatch_log}",
              file=sys.stderr)
    if server is not None:
        from repro.obs.export import render_openmetrics

        server.publish(render_openmetrics(executor.merged_registry()))
        if args.serve_linger > 0:
            _serve_linger(args.serve_linger, {"signal": None})
        server.close()
    return 0


def _cmd_cache(args) -> int:
    from repro.parallel import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.verb == "ls":
        entries = cache.entries()
        print(format_table(
            ["digest", "kind", "bytes"],
            [[e.digest, e.kind, e.size_bytes] for e in entries],
        ))
        print(f"{len(entries)} entr{'y' if len(entries) == 1 else 'ies'} "
              f"in {args.cache_dir}")
        return 0
    if args.verb == "prune":
        removed = cache.prune(
            keep=args.keep, older_than_days=args.older_than_days
        )
    else:  # clear
        removed = cache.clear()
    print(f"removed {removed} entr{'y' if removed == 1 else 'ies'} "
          f"from {args.cache_dir}")
    return 0


def _cmd_dispatch(args) -> int:
    if args.verb == "worker":
        import signal

        from repro.parallel.worker import WorkerHost

        worker = WorkerHost(
            host=args.host,
            port=args.port,
            jobs=args.jobs,
            task_modules=tuple(
                m.strip() for m in args.task_modules.split(",") if m.strip()
            ),
            heartbeat_seconds=args.heartbeat,
            inline=args.inline,
        )
        bound_host, bound_port = worker.bind()
        # The parseable line the coordinator-launching side waits for.
        print(f"dispatch worker listening on {bound_host}:{bound_port}",
              flush=True)

        def _drain(signum, _frame):
            print(f"dispatch worker draining on signal {signum}",
                  flush=True)
            worker.close()

        signal.signal(signal.SIGTERM, _drain)
        try:
            worker.serve_forever()
        except KeyboardInterrupt:
            worker.close()
        print(
            f"dispatch worker stopped "
            f"(served={worker.shards_served} failed={worker.shards_failed})"
        )
        return 0

    # status: render a persisted ledger.
    from repro.parallel.ledger import DispatchLedger

    ledger = DispatchLedger.load(args.ledger)
    doc = ledger.doc
    counts = ledger.counts()
    total = doc.get("shard_count", sum(counts.values()))
    print(f"sweep:    {doc.get('kind', '') or '(unknown)'}")
    print(f"hosts:    {', '.join(doc.get('hosts', [])) or '(none)'}")
    print(f"shards:   {total}")
    print(f"degraded: {str(bool(doc.get('degraded'))).lower()}")
    print(format_table(
        ["state", "shards"],
        [[state, counts[state]] for state in sorted(counts)
         if counts[state] or state in ("completed", "queued")],
    ))
    rows = [
        [index, entry.get("state", ""), entry.get("label", ""),
         entry.get("host", ""), entry.get("attempts", "")]
        for index, entry in sorted(
            doc.get("shards", {}).items(), key=lambda kv: int(kv[0])
        )
    ]
    if rows:
        print(format_table(
            ["shard", "state", "label", "host", "attempts"], rows
        ))
    unfinished = sum(
        counts[state] for state in ("queued", "leased", "requeued", "failed")
    )
    return 1 if unfinished else 0


def _observed_system(args, obs_config: ObservabilityConfig):
    """A two-core mix with BDC on core 0 and the obs stack attached.

    The observed workload is the fig11 DESIRED staircase shaping the
    chosen benchmark against an unshaped co-runner — the canonical
    setup every observability demo and doc example uses.
    """
    from repro.workloads import make_trace

    defaults = _defaults(args)
    desired = BinConfiguration((10, 9, 8, 7, 6, 5, 4, 3, 2, 1))
    builder = SystemBuilder(seed=defaults.seed)
    builder.with_observability(obs_config)
    builder.add_core(
        make_trace(args.benchmark, num_accesses=defaults.accesses,
                   seed=defaults.seed),
        request_shaping=RequestShapingPlan(config=desired,
                                           spec=defaults.spec),
        response_shaping=ResponseShapingPlan(config=desired,
                                             spec=defaults.spec),
    )
    builder.add_core(
        make_trace(args.corunner, num_accesses=defaults.accesses,
                   seed=defaults.seed + 1, base_address=1 << 26),
    )
    return builder.build(), defaults


def _cmd_trace(args) -> int:
    categories = (
        tuple(args.categories.split(",")) if args.categories else None
    )
    system, defaults = _observed_system(args, ObservabilityConfig(
        trace=True,
        trace_limit=args.limit,
        trace_categories=categories,
    ))
    system.run(defaults.cycles, stop_when_done=False, engine=args.engine)
    tracer = system.observability.tracer
    tracer.write_chrome(args.out)
    if args.jsonl:
        tracer.write_jsonl(args.jsonl)
    print(format_table(
        ["category", "events"],
        sorted(tracer.counts.items()),
    ))
    print(f"{len(tracer.events)} events retained "
          f"({tracer.dropped} dropped by the {args.limit}-event ring)")
    print(f"Chrome trace written to {args.out}"
          + (f"; JSONL to {args.jsonl}" if args.jsonl else ""))
    return 0


def _cmd_stats(args) -> int:
    system, defaults = _observed_system(args, ObservabilityConfig(
        sample_interval=args.interval,
        monitor=True,
        monitor_interval=max(args.interval, 1024),
    ))
    report = system.run(defaults.cycles, stop_when_done=False,
                        engine=args.engine)
    obs = system.observability

    print(format_table(
        ["core", "trace", "retired", "mean_lat", "p95_lat", "fake_req"],
        [
            [s.core_id, s.trace_name, s.retired_instructions,
             round(s.mean_memory_latency(), 1),
             round(s.latency_percentile(95.0), 1),
             s.fake_requests_sent]
            for s in report.cores
        ],
    ))
    print(f"row hit rate: {report.row_hit_rate():.3f}  "
          f"(hits={report.row_hits}, misses={report.row_misses})")

    sampler = obs.sampler
    depth = [float(v) for _, v in sampler.series("memctrl.queue_depth")]
    if depth:
        print("\nmemctrl queue depth over time "
              f"(1 sample / {sampler.interval} cycles):")
        print(ascii_series(depth, width=min(72, len(depth))))
    tail = sampler.rows()[-args.rows:]
    if tail:
        print(format_table(
            ["cycle", *sampler.probe_names], tail, precision=3
        ))

    monitor = obs.monitor
    rows = monitor.summary_rows()
    if rows:
        headers = ["core", "direction", "events", "tvd_target",
                   "tvd_intrinsic", "mi_bits"]
        if monitor.detect:
            headers += ["auc", "xcorr"]
        print("\nshaping monitor (latest checkpoint per stream):")
        print(format_table(headers, rows))
    all_violations = monitor.violations + monitor.final_violations
    if all_violations:
        worst = max(all_violations, key=lambda v: v.tvd_target)
        print(f"{len(all_violations)} guarantee violation(s); worst: "
              f"core {worst.core_id} {worst.direction} "
              f"TVD={worst.tvd_target:.4f} > {worst.threshold} "
              f"at cycle {worst.cycle}")
    else:
        print("no shaping-guarantee violations")
    detect_total = monitor.detect_violation_count
    if detect_total:
        print(f"{detect_total} detectability violation(s) "
              "(zoo attacker beat its threshold)")
    return 0


def _cmd_run(args) -> int:
    from repro.resilience.snapshot import snapshot_system
    from repro.sim.stats import report_digest

    system, defaults = _observed_resilient_system(args, profile=args.serve)
    server = publisher = None
    if args.serve:
        from repro.obs.server import MetricsServer, ServePublisher

        obs = system.observability
        server = MetricsServer(
            host=args.serve_host, port=args.serve_port
        ).start()
        publisher = ServePublisher(obs, server,
                                   interval=args.publish_interval)
        obs.attach_publisher(publisher)
        publisher.publish(system.current_cycle)
        print(f"serving metrics at {server.url} "
              "(/metrics /healthz /monitor)")
    cycles = args.cycles or defaults.cycles
    try:
        report = system.run(cycles, stop_when_done=False, engine=args.engine)
    except Exception as error:
        if server is not None:
            server.close()
        print(f"run aborted: {type(error).__name__}: {error}")
        dump_path = getattr(error, "dump_path", "")
        if dump_path:
            print(f"diagnostic dump written to {dump_path}")
        return 1
    if publisher is not None:
        publisher.publish(system.current_cycle)
        if args.serve_linger > 0:
            _serve_linger(args.serve_linger, {"signal": None})
        server.close()
    res = system.resilience
    if res is not None and res.checkpoints_taken:
        print(f"checkpoints: {res.checkpoints_taken} taken, "
              f"latest {res.last_checkpoint_path}")
    if args.snapshot_out:
        snapshot_system(system, args.snapshot_out)
        print(f"final snapshot written to {args.snapshot_out}")
    print(f"stopped at cycle {system.current_cycle}")
    print(f"report digest: {report_digest(report)}")
    return 0


def _observed_resilient_system(args, profile: bool = False):
    """The ``_observed_system`` mix plus the resilience layer.

    ``profile=True`` (the serving paths) also turns on the engine
    self-profiler and the interval sampler so the `/metrics` endpoint
    exposes profiler and probe-derived gauge families.
    """
    from repro.resilience import ResilienceConfig
    from repro.workloads import make_trace

    defaults = _defaults(args)
    desired = BinConfiguration((10, 9, 8, 7, 6, 5, 4, 3, 2, 1))
    builder = SystemBuilder(seed=defaults.seed)
    builder.with_observability(ObservabilityConfig(
        trace=True, trace_limit=args.limit, monitor=True,
        profile=profile,
        sample_interval=1024 if profile else None,
    ))
    builder.with_resilience(ResilienceConfig(
        checkpoint_every=args.checkpoint_every,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_keep=args.checkpoint_keep,
        watchdog_cycles=args.watchdog,
        watchdog_dump_path=args.watchdog_dump or "",
    ))
    builder.add_core(
        make_trace(args.benchmark, num_accesses=defaults.accesses,
                   seed=defaults.seed),
        request_shaping=RequestShapingPlan(config=desired,
                                           spec=defaults.spec),
        response_shaping=ResponseShapingPlan(config=desired,
                                             spec=defaults.spec),
    )
    builder.add_core(
        make_trace(args.corunner, num_accesses=defaults.accesses,
                   seed=defaults.seed + 1, base_address=1 << 26),
    )
    return builder.build(), defaults


def _cmd_resume(args) -> int:
    from repro.resilience.snapshot import read_snapshot_info, restore_system
    from repro.sim.stats import report_digest

    info = read_snapshot_info(args.snapshot)
    print(f"snapshot: kind={info.get('kind')} cycle={info.get('cycle')} "
          f"cores={info.get('num_cores')}")
    if (args.cycles > 0) == (args.until > 0):
        print("pass exactly one of --cycles (additional) or --until "
              "(absolute target cycle)")
        return 2
    system = restore_system(args.snapshot)
    remaining = args.cycles if args.cycles > 0 else args.until - system.current_cycle
    if remaining <= 0:
        print(f"nothing to do: snapshot already at cycle "
              f"{system.current_cycle} >= --until {args.until}")
        return 2
    try:
        report = system.run(remaining, stop_when_done=False,
                            engine=args.engine)
    except Exception as error:
        print(f"resumed run aborted: {type(error).__name__}: {error}")
        return 1
    print(f"stopped at cycle {system.current_cycle}")
    print(f"report digest: {report_digest(report)}")
    return 0


def _cmd_faults(args) -> int:
    import json as json_module

    from repro.resilience import run_scenario, scenario_names

    result = run_scenario(
        args.scenario, cycles=args.cycles, dump_path=args.dump or "",
        engine=args.engine,
    )
    print(json_module.dumps(result, indent=2, sort_keys=True, default=str))
    # The resilience contract: a fault run must end in a typed error,
    # a flagged degraded mode, or clean completion with bounds intact.
    if result.get("outcome") == "silent_failure":
        return 1
    if result.get("bound_held") is False:
        return 1
    return 0


def _serve_linger(seconds: float, stop) -> None:
    """Hold the metrics endpoint open for late scrapes.

    Wakes promptly when a drain signal flips ``stop["signal"]``.  The
    pause is purely operational (a scrape window) and never observable
    in any deterministic output, so the wall-clock use is quarantined
    here.
    """
    import time as time_module

    remaining = float(seconds)
    while remaining > 0 and stop["signal"] is None:
        # repro-lint: disable-next-line=RL001
        time_module.sleep(min(0.2, remaining))
        remaining -= 0.2


def _cmd_serve(args) -> int:
    import json as json_module
    import signal

    from repro.obs.server import MetricsServer, ServePublisher
    from repro.sim.stats import report_digest

    system, defaults = _observed_resilient_system(args, profile=True)
    obs = system.observability
    server = MetricsServer(host=args.host, port=args.port).start()
    publisher = ServePublisher(obs, server, interval=args.publish_interval)
    obs.attach_publisher(publisher)
    publisher.publish(system.current_cycle)

    stop = {"signal": None}

    def _on_signal(signum, _frame):
        stop["signal"] = signum

    # Signal handlers can only be installed from the main thread; when
    # embedded (tests drive main() from a worker thread) serve still
    # works, it just cannot drain on SIGTERM.
    import threading

    previous = {}
    if threading.current_thread() is threading.main_thread():
        previous = {
            signum: signal.signal(signum, _on_signal)
            for signum in (signal.SIGTERM, signal.SIGINT)
        }
    print(f"serving metrics at {server.url} "
          "(/metrics /healthz /monitor); SIGTERM drains")
    try:
        cycles = args.cycles or defaults.cycles
        target = system.current_cycle + cycles
        # Run in publish-interval chunks so a drain signal is honoured
        # at the next chunk boundary, not only at the end of the run.
        while system.current_cycle < target and stop["signal"] is None:
            step = min(args.publish_interval, target - system.current_cycle)
            system.run(step, stop_when_done=False, engine=args.engine)
        publisher.publish(system.current_cycle)
        report = system.report()
        print(f"stopped at cycle {system.current_cycle}")
        print(f"report digest: {report_digest(report)}")
        if args.profile_out:
            rollup = obs.profiler.rollup(include_wall=True,
                                         monitor=obs.monitor)
            with open(args.profile_out, "w", encoding="utf-8") as fh:
                json_module.dump(rollup, fh, indent=2, sort_keys=True)
            print(f"profiler rollup written to {args.profile_out}")
        if stop["signal"] is None and args.linger > 0:
            _serve_linger(args.linger, stop)
        if stop["signal"] is not None:
            server.mark_draining()
            res = system.resilience
            if res is not None:
                path = res.take_checkpoint(system)
                print(f"drain checkpoint written to {path}")
            publisher.publish(system.current_cycle, status="draining")
            print(f"drained on signal {stop['signal']} at cycle "
                  f"{system.current_cycle}")
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        server.close()
    return 0


def _cmd_profile(args) -> int:
    import json as json_module

    from repro.sim.stats import report_digest

    system, defaults = _observed_system(args, ObservabilityConfig(
        monitor=True,
        sample_interval=1024,
        profile=True,
    ))
    cycles = args.cycles or defaults.cycles
    report = system.run(cycles, stop_when_done=False, engine=args.engine)
    obs = system.observability
    rollup = obs.profiler.rollup(include_wall=True, monitor=obs.monitor)
    counts = rollup["cycles"]
    stepped_pct = (
        100.0 * counts["stepped"] / counts["simulated"]
        if counts["simulated"] else 0.0
    )
    print(f"engine: {args.engine}")
    print(f"cycles: simulated={counts['simulated']} "
          f"stepped={counts['stepped']} ({stepped_pct:.1f}%) "
          f"skipped={counts['skipped']} "
          f"in {rollup['skip_spans']['total']} idle spans")
    if rollup["stations"]:
        print("\nper-station work:")
        print(format_table(
            ["station", "ticks", "skips", "share"],
            [[row["station"], row["ticks"], row["skips"],
              f"{100.0 * row['share']:.1f}%"]
             for row in rollup["stations"]],
        ))
        col = rollup["columnar"]
        print(f"horizon refreshes: {col['horizon_refreshes']}  "
              f"dirty re-polls: {col['dirty_repolls']}  "
              f"full-tick fallbacks: {col['full_tick_fallbacks']}")
    shaping = rollup.get("shaping")
    if shaping is not None:
        print(f"shaping: checkpoints={shaping['checkpoints']} "
              f"violations={shaping['violations']} "
              f"degradations={shaping['degradations']}")
    print(f"wall: {rollup['wall']['ms']} ms (observability-only; never "
          "enters the registry, reports or digests)")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json_module.dump(rollup, fh, indent=2, sort_keys=True)
        print(f"profiler rollup written to {args.out}")
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(obs.render_exposition(at_cycle=system.current_cycle))
        print(f"OpenMetrics exposition written to {args.metrics_out}")
    print(f"report digest: {report_digest(report)}")
    return 0


def _add_serve_args(p) -> None:
    """`--serve` companion flags shared by `repro run` and `repro sweep`."""
    p.add_argument("--serve", action="store_true",
                   help="expose /metrics, /healthz and /monitor while "
                        "the command runs")
    p.add_argument("--serve-host", default="127.0.0.1",
                   help="bind address for --serve")
    p.add_argument("--serve-port", type=int, default=0,
                   help="bind port for --serve (0 = ephemeral)")
    p.add_argument("--publish-interval", type=int, default=4096,
                   metavar="CYCLES",
                   help="simulated cycles between registry snapshots")
    p.add_argument("--serve-linger", type=float, default=0.0,
                   metavar="SECONDS",
                   help="keep serving after the command finishes")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Camouflage (HPCA 2017) reproduction experiments",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="scale the run length (0.25 = quick look)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    p = sub.add_parser("fig11", help=_EXPERIMENTS["fig11"])
    p.add_argument("--benchmark", default="gcc", choices=BENCHMARK_NAMES)

    p = sub.add_parser("fig12", help=_EXPERIMENTS["fig12"])
    p.add_argument("--benchmark", default=None, choices=BENCHMARK_NAMES)

    p = sub.add_parser("fig13", help=_EXPERIMENTS["fig13"])
    p.add_argument("--adversary", default="gcc", choices=BENCHMARK_NAMES)
    p.add_argument("--victim", default="mcf", choices=("astar", "mcf"))
    p.add_argument("--tune", action="store_true",
                   help="run the online GA CONFIG phase first")

    p = sub.add_parser("covert", help=_EXPERIMENTS["covert"])
    p.add_argument("--key", default="0x2AAAAAAA")
    p.add_argument("--bits", type=int, default=32)
    p.add_argument("--pulse", type=int, default=3000)
    p.add_argument("--no-shaping", action="store_true")

    sub.add_parser("mi", help=_EXPERIMENTS["mi"])

    p = sub.add_parser("tradeoff", help=_EXPERIMENTS["tradeoff"])
    p.add_argument("--benchmark", default="apache", choices=BENCHMARK_NAMES)
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the sweep points")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="content-addressed result cache directory")

    p = sub.add_parser("detect", help=_EXPERIMENTS["detect"])
    p.add_argument("--benchmark", default="apache", choices=BENCHMARK_NAMES)
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the suite rungs")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="content-addressed result cache directory")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="also write the canonical DetectReport JSON here")

    p = sub.add_parser("sweep", help=_EXPERIMENTS["sweep"])
    p.add_argument("name", choices=_SWEEP_NAMES,
                   help="which sweep to run")
    p.add_argument("--benchmark", default=None, choices=BENCHMARK_NAMES,
                   help="override the sweep's default benchmark")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (1 = inline, the reference)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="content-addressed result cache directory")
    p.add_argument("--hosts", default=None, metavar="H:P,H:P",
                   help="dispatch shards to these worker hosts "
                        "(repro dispatch worker) instead of the "
                        "local pool")
    p.add_argument("--ledger", default=None, metavar="PATH",
                   help="persistent dispatch ledger (requires --hosts)")
    p.add_argument("--lease-seconds", type=float, default=30.0,
                   help="per-shard lease deadline for --hosts")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="write the merged OpenMetrics exposition here")
    p.add_argument("--dispatch-log", default=None, metavar="PATH",
                   help="write dispatch.* diagnostics as JSONL here")
    _add_serve_args(p)

    p = sub.add_parser("dispatch", help=_EXPERIMENTS["dispatch"])
    dispatch_sub = p.add_subparsers(dest="verb", required=True)
    p = dispatch_sub.add_parser(
        "worker", help="serve sweep shards to a dispatch coordinator"
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address")
    p.add_argument("--port", type=int, default=0,
                   help="bind port (0 = ephemeral, printed at startup)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes in this host's warm pool")
    p.add_argument("--task-modules", default="repro.parallel.tasks",
                   metavar="MODS",
                   help="comma-separated task-function module allowlist")
    p.add_argument("--heartbeat", type=float, default=1.0,
                   metavar="SECONDS",
                   help="heartbeat interval while a shard executes")
    p.add_argument("--inline", action="store_true",
                   help="run tasks in the serving thread (no pool, "
                        "no mid-task heartbeats)")
    p = dispatch_sub.add_parser(
        "status", help="render a dispatch ledger written by sweep --ledger"
    )
    p.add_argument("--ledger", required=True, metavar="PATH",
                   help="ledger file to inspect")

    p = sub.add_parser("cache", help=_EXPERIMENTS["cache"])
    p.add_argument("verb", choices=("ls", "prune", "clear"))
    p.add_argument("--cache-dir", required=True, metavar="DIR")
    p.add_argument("--keep", type=int, default=None, metavar="N",
                   help="prune: retain only the newest N entries")
    p.add_argument("--older-than-days", type=float, default=None,
                   metavar="DAYS",
                   help="prune: remove entries older than DAYS")

    p = sub.add_parser("calibrate", help=_EXPERIMENTS["calibrate"])
    p.add_argument("--benchmark", default=None, choices=BENCHMARK_NAMES)

    p = sub.add_parser("trace", help=_EXPERIMENTS["trace"])
    p.add_argument("--benchmark", default="gcc", choices=BENCHMARK_NAMES)
    p.add_argument("--corunner", default="mcf", choices=BENCHMARK_NAMES)
    p.add_argument("--engine", default="cycle",
                   choices=("cycle", "next_event", "columnar"))
    p.add_argument("--out", default="trace.json",
                   help="Chrome trace-event JSON output path")
    p.add_argument("--jsonl", default=None, metavar="PATH",
                   help="also export line-delimited JSON")
    p.add_argument("--limit", type=int, default=65536,
                   help="event ring capacity")
    p.add_argument("--categories", default=None,
                   help="comma-separated subset of "
                        + ",".join(ALL_CATEGORIES))

    p = sub.add_parser("stats", help=_EXPERIMENTS["stats"])
    p.add_argument("--benchmark", default="gcc", choices=BENCHMARK_NAMES)
    p.add_argument("--corunner", default="mcf", choices=BENCHMARK_NAMES)
    p.add_argument("--engine", default="cycle",
                   choices=("cycle", "next_event", "columnar"))
    p.add_argument("--interval", type=int, default=1024,
                   help="cycles between metric samples")
    p.add_argument("--rows", type=int, default=8,
                   help="sampled rows to print (tail)")

    p = sub.add_parser("run", help=_EXPERIMENTS["run"])
    p.add_argument("--benchmark", default="gcc", choices=BENCHMARK_NAMES)
    p.add_argument("--corunner", default="mcf", choices=BENCHMARK_NAMES)
    p.add_argument("--engine", default="cycle",
                   choices=("cycle", "next_event", "columnar"))
    p.add_argument("--cycles", type=int, default=0,
                   help="run length (default: the experiment default)")
    p.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                   help="snapshot the whole system every N cycles")
    p.add_argument("--checkpoint-dir", default="checkpoints",
                   help="directory for periodic snapshots")
    p.add_argument("--checkpoint-keep", type=int, default=3,
                   help="most-recent snapshots to retain")
    p.add_argument("--watchdog", type=int, default=None, metavar="CYCLES",
                   help="stall budget before aborting (0 disables)")
    p.add_argument("--watchdog-dump", default=None, metavar="PATH",
                   help="JSON diagnostic dump path on watchdog trip")
    p.add_argument("--snapshot-out", default=None, metavar="PATH",
                   help="write a final snapshot when the run finishes")
    p.add_argument("--limit", type=int, default=65536,
                   help="event ring capacity")
    _add_serve_args(p)

    p = sub.add_parser("serve", help=_EXPERIMENTS["serve"])
    p.add_argument("--benchmark", default="gcc", choices=BENCHMARK_NAMES)
    p.add_argument("--corunner", default="mcf", choices=BENCHMARK_NAMES)
    p.add_argument("--engine", default="cycle",
                   choices=("cycle", "next_event", "columnar"))
    p.add_argument("--cycles", type=int, default=0,
                   help="run length (default: the experiment default)")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address for the metrics endpoint")
    p.add_argument("--port", type=int, default=0,
                   help="bind port (0 = ephemeral, printed at startup)")
    p.add_argument("--publish-interval", type=int, default=4096,
                   metavar="CYCLES",
                   help="simulated cycles between registry snapshots")
    p.add_argument("--linger", type=float, default=0.0, metavar="SECONDS",
                   help="keep serving after the run finishes")
    p.add_argument("--profile-out", default=None, metavar="PATH",
                   help="write the profiler rollup JSON when done")
    p.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                   help="snapshot the whole system every N cycles")
    p.add_argument("--checkpoint-dir", default="checkpoints",
                   help="directory for drain/periodic snapshots")
    p.add_argument("--checkpoint-keep", type=int, default=3,
                   help="most-recent snapshots to retain")
    p.add_argument("--watchdog", type=int, default=None, metavar="CYCLES",
                   help="stall budget before aborting (0 disables)")
    p.add_argument("--watchdog-dump", default=None, metavar="PATH",
                   help="JSON diagnostic dump path on watchdog trip")
    p.add_argument("--limit", type=int, default=65536,
                   help="event ring capacity")

    p = sub.add_parser("profile", help=_EXPERIMENTS["profile"])
    p.add_argument("--benchmark", default="gcc", choices=BENCHMARK_NAMES)
    p.add_argument("--corunner", default="mcf", choices=BENCHMARK_NAMES)
    p.add_argument("--engine", default="columnar",
                   choices=("cycle", "next_event", "columnar"))
    p.add_argument("--cycles", type=int, default=0,
                   help="run length (default: the experiment default)")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the flame-style rollup JSON here")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="also write the OpenMetrics exposition here")

    p = sub.add_parser("resume", help=_EXPERIMENTS["resume"])
    p.add_argument("snapshot", help="snapshot file written by 'repro run'")
    p.add_argument("--engine", default="cycle",
                   choices=("cycle", "next_event", "columnar"))
    p.add_argument("--cycles", type=int, default=0,
                   help="additional cycles to run")
    p.add_argument("--until", type=int, default=0, metavar="CYCLE",
                   help="absolute cycle to run to (for digest comparison "
                        "against an uninterrupted 'repro run')")

    p = sub.add_parser("faults", help=_EXPERIMENTS["faults"])
    p.add_argument("--scenario", required=True,
                   help="one of: livelock, flood, saturate, degrade, "
                        "epoch-stress, malformed-trace")
    p.add_argument("--engine", default="cycle",
                   choices=("cycle", "next_event", "columnar"))
    p.add_argument("--cycles", type=int, default=0,
                   help="override the scenario's default run length")
    p.add_argument("--dump", default=None, metavar="PATH",
                   help="write the scenario's JSON report/dump here")

    p = sub.add_parser(
        "lint",
        help="run the repro-lint invariant checkers (RL001..RL009)",
    )
    p.add_argument("paths", nargs="*", default=["src"],
                   help="files or directories to lint (default: src)")
    p.add_argument("--format", choices=("text", "json", "sarif"),
                   default="text")
    p.add_argument("--select", metavar="IDS",
                   help="comma-separated checker ids to run")
    p.add_argument("--baseline", metavar="PATH",
                   help="override the configured baseline file")
    p.add_argument("--no-baseline", action="store_true",
                   help="ignore the baseline file entirely")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the content-digest findings cache")
    p.add_argument("--timings", action="store_true",
                   help="print per-checker wall-clock times to stderr")
    p.add_argument("--list-checkers", action="store_true",
                   help="print the checker catalog and exit")

    return parser


def _cmd_lint(args) -> int:
    from repro.lint.runner import run as lint_run

    return lint_run(
        paths=args.paths,
        output_format=args.format,
        baseline_path=args.baseline,
        no_baseline=args.no_baseline,
        select=args.select,
        list_checkers=args.list_checkers,
        no_cache=args.no_cache,
        timings=args.timings,
    )


_HANDLERS = {
    "list": _cmd_list,
    "lint": _cmd_lint,
    "fig11": _cmd_fig11,
    "fig12": _cmd_fig12,
    "fig13": _cmd_fig13,
    "covert": _cmd_covert,
    "mi": _cmd_mi,
    "tradeoff": _cmd_tradeoff,
    "detect": _cmd_detect,
    "calibrate": _cmd_calibrate,
    "trace": _cmd_trace,
    "stats": _cmd_stats,
    "run": _cmd_run,
    "resume": _cmd_resume,
    "faults": _cmd_faults,
    "sweep": _cmd_sweep,
    "dispatch": _cmd_dispatch,
    "cache": _cmd_cache,
    "serve": _cmd_serve,
    "profile": _cmd_profile,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

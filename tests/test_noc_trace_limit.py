"""Bounded grant traces on the NoC channels.

``grant_trace`` is the wire an adversary probes, so the security
benchmarks keep it in full — but on multi-million-cycle performance
runs an unbounded list exhausts memory.  ``trace_limit`` turns the
trace into a bounded ring of the most recent grants, wired through
``SystemBuilder.with_noc`` and defaulting to today's unbounded
behavior.
"""

import warnings

import pytest

from repro.common.errors import ConfigurationError
from repro.memctrl.transaction import MemoryTransaction, TransactionType
from repro.noc.link import SharedLink
from repro.noc.mesh import MeshNetwork
from repro.sim.system import SystemBuilder
from repro.workloads import make_trace


def _txn(core_id=0, address=0):
    return MemoryTransaction(
        core_id=core_id,
        address=address,
        kind=TransactionType.READ,
        created_cycle=0,
    )


class TestSharedLinkTraceLimit:
    def test_trace_keeps_most_recent_grants(self):
        link = SharedLink(num_ports=1, latency=1, trace_limit=4)
        for cycle in range(10):
            link.inject(0, _txn(address=cycle))
            link.tick(cycle)
        assert link.total_grants == 10
        assert len(link.grant_trace) == 4
        assert [grant_cycle for grant_cycle, _, _ in link.grant_trace] == [
            6, 7, 8, 9
        ]

    def test_unbounded_by_default(self):
        link = SharedLink(num_ports=1, latency=1)
        for cycle in range(10):
            link.inject(0, _txn(address=cycle))
            link.tick(cycle)
        assert len(link.grant_trace) == 10

    def test_drain_trace_resets_and_stays_bounded(self):
        link = SharedLink(num_ports=1, latency=1, trace_limit=3)
        for cycle in range(5):
            link.inject(0, _txn(address=cycle))
            link.tick(cycle)
        drained = link.drain_trace()
        assert isinstance(drained, list)
        assert len(drained) == 3
        assert len(link.grant_trace) == 0
        for cycle in range(5, 12):
            link.inject(0, _txn(address=cycle))
            link.tick(cycle)
        assert len(link.grant_trace) == 3

    @pytest.mark.parametrize("limit", [0, -1])
    def test_invalid_limit_rejected(self, limit):
        with pytest.raises(ConfigurationError):
            SharedLink(num_ports=1, trace_limit=limit)
        with pytest.raises(ConfigurationError):
            MeshNetwork(num_ports=2, trace_limit=limit)
        with pytest.raises(ConfigurationError):
            SystemBuilder().with_noc(trace_limit=limit)


class TestMeshTraceLimit:
    def test_trace_bounded_over_deliveries(self):
        mesh = MeshNetwork(num_ports=2, trace_limit=5)
        for round_start in range(0, 120, 4):
            if mesh.can_inject(0):
                mesh.inject(0, _txn(core_id=0, address=round_start))
            for cycle in range(round_start, round_start + 4):
                mesh.tick(cycle)
                mesh.pop_arrivals(cycle)
        assert mesh.total_grants > 5
        assert len(mesh.grant_trace) == 5


class TestBuilderWiring:
    def _system(self, topology, trace_limit):
        builder = SystemBuilder(seed=3)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            builder.with_noc(topology=topology, trace_limit=trace_limit)
        builder.add_core(make_trace("gcc", 200, seed=3))
        return builder.build()

    @pytest.mark.parametrize("topology", ["shared", "mesh"])
    def test_with_noc_passes_limit_to_both_directions(self, topology):
        system = self._system(topology, trace_limit=8)
        assert system.request_link.trace_limit == 8
        assert system.response_link.trace_limit == 8

    def test_default_stays_unbounded(self):
        system = self._system("shared", trace_limit=None)
        assert system.request_link.trace_limit is None
        assert isinstance(system.request_link.grant_trace, list)

    def test_bounded_growth_over_a_full_run(self):
        system = self._system("shared", trace_limit=16)
        system.run(30_000, stop_when_done=False)
        assert system.request_link.total_grants > 16
        assert len(system.request_link.grant_trace) == 16
        assert len(system.response_link.grant_trace) <= 16


class TestDeprecatedShim:
    """``with_noc(trace_limit=)`` lives on as a shim over the
    observability config's ``noc_grant_trace_limit``."""

    def _base(self):
        builder = SystemBuilder(seed=3)
        builder.add_core(make_trace("gcc", 200, seed=3))
        return builder

    def test_with_noc_trace_limit_warns(self):
        with pytest.warns(DeprecationWarning, match="noc_grant_trace_limit"):
            self._base().with_noc(trace_limit=8)

    def test_with_noc_without_limit_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            self._base().with_noc(topology="shared")

    def test_shim_equivalent_to_observability_config(self):
        builder = self._base()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            builder.with_noc(trace_limit=8)
        via_shim = builder.build()
        via_obs = (
            self._base()
            .with_observability(noc_grant_trace_limit=8)
            .build()
        )
        assert via_shim.request_link.trace_limit == 8
        assert via_obs.request_link.trace_limit == 8
        assert via_obs.response_link.trace_limit == 8

    def test_observability_config_wins_over_shim(self):
        builder = self._base().with_observability(noc_grant_trace_limit=4)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            builder.with_noc(trace_limit=99)
        system = builder.build()
        assert system.request_link.trace_limit == 4
        assert system.response_link.trace_limit == 4

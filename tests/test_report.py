"""Tests for the benchmark-report assembler."""

from pathlib import Path

from repro.analysis.report import generate_report, main


def seed_results(tmp_path: Path):
    (tmp_path / "fig11_distributions.txt").write_text("fig11 data\n")
    (tmp_path / "headline_speedups.txt").write_text("headline data\n")
    (tmp_path / "custom_extra.txt").write_text("extra data\n")
    return tmp_path


class TestGenerate:
    def test_includes_present_sections(self, tmp_path):
        report = generate_report(seed_results(tmp_path))
        assert "Figure 11" in report
        assert "fig11 data" in report
        assert "headline data" in report

    def test_lists_missing_sections(self, tmp_path):
        report = generate_report(seed_results(tmp_path))
        assert "Not yet run" in report
        assert "fig12_reqc_speedup" in report

    def test_includes_unindexed_extras(self, tmp_path):
        report = generate_report(seed_results(tmp_path))
        assert "custom_extra" in report
        assert "extra data" in report

    def test_empty_dir(self, tmp_path):
        report = generate_report(tmp_path)
        assert "Not yet run" in report


class TestCli:
    def test_writes_output_file(self, tmp_path, capsys):
        seed_results(tmp_path)
        out = tmp_path / "report.md"
        assert main([str(tmp_path), "-o", str(out)]) == 0
        assert "fig11 data" in out.read_text()

    def test_prints_to_stdout(self, tmp_path, capsys):
        seed_results(tmp_path)
        assert main([str(tmp_path)]) == 0
        assert "fig11 data" in capsys.readouterr().out

    def test_missing_dir_errors(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 1

"""Tests for phased workloads and the phase-change detector."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRng
from repro.ga.phase import (
    PhaseDetector,
    PhaseDetectorConfig,
    detect_phases_from_timestamps,
)
from repro.workloads.phased import Phase, PhasedTraceGenerator, two_phase_trace
from repro.workloads.synthetic import TraceParameters


class TestPhasedGenerator:
    def test_segment_lengths(self):
        phases = [
            Phase(TraceParameters(gap_mean=10), 100),
            Phase(TraceParameters(gap_mean=200), 50),
        ]
        gen = PhasedTraceGenerator(phases, DeterministicRng(1))
        trace = gen.trace()
        assert len(trace) == 150
        assert gen.boundaries() == [100]

    def test_phase_intensity_shift_visible(self):
        phases = [
            Phase(TraceParameters(gap_mean=10, p_enter_off=0.0), 300),
            Phase(TraceParameters(gap_mean=300, p_enter_off=0.0), 300),
        ]
        trace = PhasedTraceGenerator(phases, DeterministicRng(1)).trace()
        first = sum(r.nonmem_insts for r in trace.records[:300]) / 300
        second = sum(r.nonmem_insts for r in trace.records[300:]) / 300
        assert second > 5 * first

    def test_deterministic(self):
        phases = [Phase(TraceParameters(), 50)]
        a = PhasedTraceGenerator(phases, DeterministicRng(3)).trace()
        b = PhasedTraceGenerator(phases, DeterministicRng(3)).trace()
        assert a.records == b.records

    def test_rejects_empty_phases(self):
        with pytest.raises(ConfigurationError):
            PhasedTraceGenerator([], DeterministicRng(1))

    def test_rejects_zero_length_phase(self):
        with pytest.raises(ConfigurationError):
            Phase(TraceParameters(), 0)

    def test_two_phase_helper(self):
        trace, boundaries = two_phase_trace(
            accesses_per_phase=100, repeats=2
        )
        assert len(trace) == 400
        assert boundaries == [100, 200, 300]


class TestPhaseDetectorConfig:
    def test_rejects_bad_alpha(self):
        with pytest.raises(ConfigurationError):
            PhaseDetectorConfig(ewma_alpha=0.0)

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            PhaseDetectorConfig(window_cycles=0)


class TestPhaseDetector:
    def feed(self, detector, rate_per_window, windows, start_cycle=0):
        """Feed `rate` events per window for `windows` windows."""
        w = detector.config.window_cycles
        cycle = start_cycle
        for _ in range(windows):
            for _ in range(rate_per_window):
                detector.note_demand()
            cycle += w
            detector.tick(cycle)
        return cycle

    def test_steady_rate_never_fires(self):
        d = PhaseDetector(PhaseDetectorConfig(window_cycles=100))
        self.feed(d, 20, 50)
        assert d.detections == []

    def test_step_up_fires_once(self):
        d = PhaseDetector(PhaseDetectorConfig(window_cycles=100))
        cycle = self.feed(d, 10, 10)
        self.feed(d, 60, 10, start_cycle=cycle)
        assert len(d.detections) == 1

    def test_step_down_fires(self):
        d = PhaseDetector(PhaseDetectorConfig(window_cycles=100))
        cycle = self.feed(d, 60, 10)
        self.feed(d, 5, 10, start_cycle=cycle)
        assert len(d.detections) >= 1

    def test_small_fluctuations_ignored(self):
        d = PhaseDetector(PhaseDetectorConfig(window_cycles=100))
        cycle = 0
        for i in range(40):
            for _ in range(20 + (i % 3)):  # 20..22 events/window
                d.note_demand()
            cycle += 100
            d.tick(cycle)
        assert d.detections == []

    def test_idle_noise_below_abs_floor_ignored(self):
        d = PhaseDetector(
            PhaseDetectorConfig(window_cycles=100, min_abs_delta=4.0)
        )
        cycle = 0
        for i in range(40):
            for _ in range(1 if i % 2 else 2):  # 100% relative swings
                d.note_demand()
            cycle += 100
            d.tick(cycle)
        assert d.detections == []

    def test_baseline_tracks_rate(self):
        d = PhaseDetector(PhaseDetectorConfig(window_cycles=100))
        self.feed(d, 30, 30)
        assert d.baseline == pytest.approx(30, abs=2)

    def test_holdoff_suppresses_double_fire(self):
        d = PhaseDetector(
            PhaseDetectorConfig(window_cycles=100, holdoff_windows=3)
        )
        cycle = self.feed(d, 10, 10)
        cycle = self.feed(d, 60, 2, start_cycle=cycle)
        self.feed(d, 60, 10, start_cycle=cycle)
        assert len(d.detections) == 1


class TestOfflineDetection:
    def test_finds_boundary_in_timeline(self):
        # Quiet: 1 event / 100 cycles for 10k; busy: 1/10 after.
        events = list(range(0, 10_000, 100)) + list(range(10_000, 20_000, 10))
        config = PhaseDetectorConfig(window_cycles=1000)
        detections = detect_phases_from_timestamps(events, 20_000, config)
        assert detections, "the quiet->busy transition must be detected"
        assert 10_000 <= detections[0] <= 13_000

    def test_detects_phases_of_generated_trace(self):
        """End to end: run the two-phase trace through a system and
        detect the alternation from the bus timeline."""
        from repro.sim.system import SystemBuilder

        trace, _bounds = two_phase_trace(
            accesses_per_phase=400, repeats=2, seed=5
        )
        builder = SystemBuilder(seed=5)
        builder.add_core(trace)
        system = builder.build()
        system.run(80_000, stop_when_done=False)
        events = [c for c, p, _ in system.request_link.grant_trace]
        detections = detect_phases_from_timestamps(
            events, system.current_cycle,
            PhaseDetectorConfig(window_cycles=2048),
        )
        # Three internal boundaries; allow detector slack but demand
        # that at least two transitions were caught.
        assert len(detections) >= 2

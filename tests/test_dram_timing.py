"""Unit tests for DDR3 timing parameters."""

import pytest

from repro.common.errors import ConfigurationError
from repro.dram.timing import DramTiming


class TestDefaults:
    def test_defaults_are_ddr3_1333(self):
        t = DramTiming()
        assert t.tRCD == 9
        assert t.tRP == 9
        assert t.tCAS == 9
        assert t.tRAS == 24

    def test_trc_is_tras_plus_trp(self):
        t = DramTiming()
        assert t.tRC == t.tRAS + t.tRP

    def test_tburst_is_half_burst_length(self):
        assert DramTiming(burst_length=8).tBURST == 4
        assert DramTiming(burst_length=4).tBURST == 2

    def test_read_latency(self):
        t = DramTiming()
        assert t.read_latency == t.tCAS + t.tBURST

    def test_write_latency(self):
        t = DramTiming()
        assert t.write_latency == t.tCWL + t.tBURST


class TestLatencyHelpers:
    def test_latency_ordering(self):
        """Row hit < closed bank < row conflict — the locality ladder."""
        t = DramTiming()
        assert t.row_hit_latency() < t.row_closed_latency()
        assert t.row_closed_latency() < t.row_conflict_latency()

    def test_row_conflict_adds_precharge(self):
        t = DramTiming()
        assert t.row_conflict_latency() - t.row_closed_latency() == t.tRP

    def test_row_closed_adds_rcd(self):
        t = DramTiming()
        assert t.row_closed_latency() - t.row_hit_latency() == t.tRCD


class TestValidation:
    def test_rejects_zero_parameter(self):
        with pytest.raises(ConfigurationError):
            DramTiming(tRCD=0)

    def test_rejects_negative_parameter(self):
        with pytest.raises(ConfigurationError):
            DramTiming(tWR=-1)

    def test_rejects_odd_burst_length(self):
        with pytest.raises(ConfigurationError):
            DramTiming(burst_length=7)

    def test_frozen(self):
        t = DramTiming()
        with pytest.raises(Exception):
            t.tRCD = 5

"""Unit tests for the trace-driven out-of-order core model."""

import pytest

from repro.cache.hierarchy import CacheHierarchy
from repro.common.errors import ProtocolError
from repro.cpu.core import Core, CoreConfig
from repro.cpu.trace import MemoryTrace, TraceRecord
from repro.common.errors import ConfigurationError


class SinkStub:
    """Request sink that records submissions and can refuse."""

    def __init__(self):
        self.submitted = []
        self.accepting = True

    def can_accept(self, core_id):
        return self.accepting

    def submit(self, txn, cycle):
        self.submitted.append((txn, cycle))


def make_core(records, config=None):
    sink = SinkStub()
    core = Core(
        core_id=0,
        trace=MemoryTrace(records),
        hierarchy=CacheHierarchy(),
        request_sink=sink,
        config=config or CoreConfig(),
    )
    return core, sink


def run_with_memory(core, sink, max_cycles, latency=20):
    """Tick the core, returning each miss as a fill after ``latency``."""
    in_flight = []
    delivered = 0
    for cycle in range(max_cycles):
        core.tick(cycle)
        while sink.submitted:
            txn, _ = sink.submitted.pop(0)
            in_flight.append((cycle + latency, txn))
        still = []
        for ready, txn in in_flight:
            if ready <= cycle and not txn.is_write:
                core.receive_fill(txn, cycle)
                delivered += 1
            elif ready > cycle:
                still.append((ready, txn))
        in_flight = still
        if core.done and not in_flight and not sink.submitted:
            break
    return delivered


class TestConfigValidation:
    def test_rejects_zero_width(self):
        with pytest.raises(ConfigurationError):
            CoreConfig(width=0)

    def test_rejects_window_smaller_than_width(self):
        with pytest.raises(ConfigurationError):
            CoreConfig(width=4, window_size=2)

    def test_rejects_zero_mshrs(self):
        with pytest.raises(ConfigurationError):
            CoreConfig(mshr_entries=0)


class TestComputeThroughput:
    def test_retires_at_width_when_unblocked(self):
        """A pure-compute stretch retires at the full machine width."""
        core, sink = make_core([TraceRecord(400, 0)])
        run_with_memory(core, sink, 1000, latency=10)
        assert core.done
        # 401 instructions at width 4 plus the initial miss round trip.
        assert core.finish_cycle < 400 / 4 + 40

    def test_ipc_upper_bound(self):
        core, sink = make_core([TraceRecord(1000, 0)])
        run_with_memory(core, sink, 2000)
        assert core.ipc() <= core.config.width


class TestMissHandling:
    def test_llc_miss_submits_transaction(self):
        core, sink = make_core([TraceRecord(0, 0x10000)])
        core.tick(0)
        assert core.demand_requests == 1

    def test_same_line_misses_merge(self):
        """Two accesses to one line produce a single memory request."""
        core, sink = make_core(
            [TraceRecord(0, 0x10000), TraceRecord(0, 0x10020)]
        )
        run_with_memory(core, sink, 200)
        assert core.done
        assert core.demand_requests == 1
        assert core.mshrs.merges == 1

    def test_cache_hit_no_transaction(self):
        core, sink = make_core(
            [TraceRecord(0, 0x10000), TraceRecord(50, 0x10000)]
        )
        run_with_memory(core, sink, 400)
        assert core.done
        assert core.demand_requests == 1  # second access hits in L1

    def test_load_blocks_retirement_until_fill(self):
        core, sink = make_core([TraceRecord(0, 0x10000), TraceRecord(100, 0x10000)])
        for cycle in range(50):
            core.tick(cycle)  # no fills delivered
        # The load at seq 0 blocks everything behind it.
        assert core.retired_instructions == 0
        assert core.memory_stall_cycles > 0

    def test_store_does_not_block_retirement(self):
        core, sink = make_core(
            [TraceRecord(0, 0x10000, is_write=True), TraceRecord(40, 0x10000)]
        )
        for cycle in range(30):
            core.tick(cycle)
        # The store's line never returned, yet instructions retire.
        assert core.retired_instructions > 0

    def test_mshr_full_stalls_fetch(self):
        config = CoreConfig(mshr_entries=2)
        records = [TraceRecord(0, i * 0x10000) for i in range(6)]
        core, sink = make_core(records, config)
        for cycle in range(20):
            core.tick(cycle)
        assert core.outstanding_misses == 2
        assert core.fetch_stall_cycles > 0

    def test_sink_backpressure_stalls_fetch(self):
        core, sink = make_core([TraceRecord(0, 0x10000)])
        sink.accepting = False
        for cycle in range(10):
            core.tick(cycle)
        assert core.demand_requests == 0
        assert core.fetch_stall_cycles > 0
        sink.accepting = True
        core.tick(10)
        assert core.demand_requests == 1


class TestWindowLimit:
    def test_window_bounds_runahead(self):
        """Fetch cannot run more than window_size past retirement."""
        config = CoreConfig(width=4, window_size=16)
        core, sink = make_core(
            [TraceRecord(0, 0x10000), TraceRecord(1000, 0x20000)], config
        )
        for cycle in range(100):
            core.tick(cycle)  # first load never returns
        assert core.window_occupancy <= 16
        assert core.retired_instructions == 0


class TestFills:
    def test_fill_wakes_all_merged_loads(self):
        core, sink = make_core(
            [TraceRecord(0, 0x10000), TraceRecord(0, 0x10040 - 0x40)]
        )
        run_with_memory(core, sink, 300)
        assert core.done

    def test_fill_for_wrong_core_raises(self):
        core, sink = make_core([TraceRecord(0, 0x10000)])
        core.tick(0)
        txn, _ = sink.submitted[0]
        txn.core_id = 1
        with pytest.raises(ProtocolError):
            core.receive_fill(txn, 10)

    def test_fake_fill_ignored(self):
        from repro.memctrl.transaction import MemoryTransaction, TransactionType

        core, sink = make_core([TraceRecord(0, 0x10000)])
        core.tick(0)
        fake = MemoryTransaction(
            core_id=0, address=0x999940, kind=TransactionType.FAKE_READ,
            created_cycle=0,
        )
        core.receive_fill(fake, 5)  # no exception, no state change
        assert core.outstanding_misses == 1

    def test_writeback_emitted_on_dirty_eviction(self):
        """Dirty lines leaving the LLC become write transactions."""
        from repro.cache.cache import CacheConfig
        from repro.cache.hierarchy import HierarchyConfig

        tiny = HierarchyConfig(
            l1=CacheConfig(size_bytes=2 * 64 * 2, ways=2, line_bytes=64),
            l2=CacheConfig(size_bytes=4 * 64 * 4, ways=4, line_bytes=64),
        )
        records = [
            TraceRecord(2, i * 256, is_write=True) for i in range(8)
        ]
        sink = SinkStub()
        core = Core(0, MemoryTrace(records), CacheHierarchy(tiny), sink)
        run_with_memory(core, sink, 2000)
        assert core.done
        assert core.writeback_requests > 0


class TestCompletion:
    def test_done_and_finish_cycle(self):
        core, sink = make_core([TraceRecord(10, 0x1000)])
        run_with_memory(core, sink, 500)
        assert core.done
        assert core.finish_cycle is not None
        assert core.retired_instructions == 11  # 10 non-mem + 1 access

    def test_tick_after_done_is_noop(self):
        core, sink = make_core([TraceRecord(0, 0x1000)])
        run_with_memory(core, sink, 500)
        cycles_before = core.cycles
        core.tick(10_000)
        assert core.cycles == cycles_before

    def test_memory_stall_fraction_bounded(self):
        core, sink = make_core([TraceRecord(5, i * 0x40000) for i in range(10)])
        run_with_memory(core, sink, 5000, latency=50)
        assert 0.0 <= core.memory_stall_fraction() <= 1.0

"""Unit tests for the event tracer: events, ring, filters, exporters."""

import io
import json

import pytest

from repro.common.errors import ConfigurationError
from repro.obs import (
    ALL_CATEGORIES,
    CATEGORY_DRAM,
    CATEGORY_SHAPER,
    SYSTEM_CORE,
    EventTracer,
    NULL_TRACER,
    RingBuffer,
    TraceEvent,
    make_trace_buffer,
)


class TestRingBuffer:
    def test_unbounded_keeps_everything(self):
        ring = RingBuffer()
        for i in range(100):
            ring.append(i)
        assert len(ring) == 100
        assert ring.dropped == 0
        assert ring.snapshot() == list(range(100))

    def test_bounded_drops_oldest_and_counts(self):
        ring = RingBuffer(capacity=3)
        for i in range(8):
            ring.append(i)
        assert ring.snapshot() == [5, 6, 7]
        assert ring.dropped == 5
        assert ring.total_appended == 8

    def test_drain_resets(self):
        ring = RingBuffer(capacity=4)
        ring.append(1)
        ring.append(2)
        assert ring.drain() == [1, 2]
        assert len(ring) == 0
        assert not ring

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            RingBuffer(capacity=0)

    def test_make_trace_buffer_kinds(self):
        assert isinstance(make_trace_buffer(None), list)
        bounded = make_trace_buffer(2)
        for i in range(5):
            bounded.append(i)
        assert list(bounded) == [3, 4]
        with pytest.raises(ConfigurationError):
            make_trace_buffer(0)


class TestTraceEvent:
    def test_args_are_canonical_and_hashable(self):
        a = TraceEvent(5, CATEGORY_SHAPER, "shaper.real_release", 0,
                       args=tuple(sorted({"bin": 2, "queued": 1}.items())))
        b = TraceEvent(5, CATEGORY_SHAPER, "shaper.real_release", 0,
                       args=tuple(sorted({"queued": 1, "bin": 2}.items())))
        assert a == b
        assert hash(a) == hash(b)
        assert a.args_dict == {"bin": 2, "queued": 1}

    def test_chrome_obj_core_event(self):
        obj = TraceEvent(17, CATEGORY_DRAM, "dram.ACT", 1,
                         args=(("bank", 3),)).as_chrome_obj()
        assert obj["ph"] == "i"
        assert obj["ts"] == 17
        assert obj["pid"] == 1 and obj["tid"] == 1
        assert obj["args"] == {"bank": 3}

    def test_chrome_obj_system_event_uses_system_track(self):
        obj = TraceEvent(9, CATEGORY_DRAM, "dram.REF",
                         SYSTEM_CORE).as_chrome_obj()
        assert obj["pid"] == 2 and obj["tid"] == 0

    def test_jsonl_obj_round_trips(self):
        event = TraceEvent(3, CATEGORY_SHAPER, "shaper.fake_inject", 0,
                           args=(("address", 64),))
        obj = json.loads(json.dumps(event.as_jsonl_obj()))
        assert obj == {"cycle": 3, "cat": "shaper",
                       "name": "shaper.fake_inject", "core": 0,
                       "args": {"address": 64}}


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.emit(0, CATEGORY_SHAPER, "shaper.replenish", 0, x=1)


class TestEventTracer:
    def test_records_in_emission_order(self):
        tracer = EventTracer()
        tracer.emit(5, CATEGORY_SHAPER, "shaper.replenish", 0, credits=4)
        tracer.emit(5, CATEGORY_DRAM, "dram.ACT", 1, bank=0)
        names = [e.name for e in tracer.events]
        assert names == ["shaper.replenish", "dram.ACT"]
        assert tracer.counts == {"shaper": 1, "dram": 1}

    def test_ring_bound_and_drop_count(self):
        tracer = EventTracer(limit=4)
        for cycle in range(10):
            tracer.emit(cycle, CATEGORY_DRAM, "dram.RD", 0)
        assert [e.cycle for e in tracer.events] == [6, 7, 8, 9]
        assert tracer.dropped == 6
        assert tracer.total_emitted == 10
        # Drops never hide activity from the per-category counts.
        assert tracer.counts[CATEGORY_DRAM] == 10

    def test_category_filter(self):
        tracer = EventTracer(categories=[CATEGORY_SHAPER])
        tracer.emit(1, CATEGORY_SHAPER, "shaper.real_release", 0)
        tracer.emit(1, CATEGORY_DRAM, "dram.ACT", 0)
        assert [e.category for e in tracer.events] == [CATEGORY_SHAPER]
        assert CATEGORY_DRAM not in tracer.counts

    def test_events_in(self):
        tracer = EventTracer()
        tracer.emit(1, CATEGORY_SHAPER, "shaper.real_release", 0)
        tracer.emit(2, CATEGORY_DRAM, "dram.ACT", 0)
        assert [e.cycle for e in tracer.events_in(CATEGORY_DRAM)] == [2]

    def test_unknown_category_rejected(self):
        with pytest.raises(ConfigurationError):
            EventTracer(categories=["nocache"])
        with pytest.raises(ConfigurationError):
            EventTracer(limit=0)

    def test_known_categories_accepted(self):
        assert EventTracer(categories=ALL_CATEGORIES).categories == frozenset(
            ALL_CATEGORIES
        )

    def test_chrome_export_shape(self):
        tracer = EventTracer(limit=2)
        for cycle in range(3):
            tracer.emit(cycle, CATEGORY_DRAM, "dram.WR", 0, bank=1)
        payload = tracer.to_chrome()
        events = payload["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        instants = [e for e in events if e["ph"] == "i"]
        assert {m["args"]["name"] for m in metadata} == {
            "repro cores", "repro system"
        }
        assert [e["ts"] for e in instants] == [1, 2]
        assert payload["otherData"]["dropped_events"] == 1
        assert payload["otherData"]["category_counts"] == {"dram": 3}

    def test_write_chrome_and_jsonl_to_streams(self):
        tracer = EventTracer()
        tracer.emit(4, CATEGORY_SHAPER, "shaper.jitter_hold", 0,
                    hold_until=7)
        chrome = io.StringIO()
        tracer.write_chrome(chrome)
        parsed = json.loads(chrome.getvalue())
        assert any(e.get("name") == "shaper.jitter_hold"
                   for e in parsed["traceEvents"])
        jsonl = io.StringIO()
        tracer.write_jsonl(jsonl)
        lines = [json.loads(line) for line in
                 jsonl.getvalue().splitlines()]
        assert lines == [{"cycle": 4, "cat": "shaper",
                          "name": "shaper.jitter_hold", "core": 0,
                          "args": {"hold_until": 7}}]

    def test_write_to_paths(self, tmp_path):
        tracer = EventTracer()
        tracer.emit(1, CATEGORY_DRAM, "dram.PRE", 0)
        chrome_path = tmp_path / "trace.json"
        jsonl_path = tmp_path / "trace.jsonl"
        tracer.write_chrome(str(chrome_path))
        tracer.write_jsonl(str(jsonl_path))
        assert json.loads(chrome_path.read_text())["traceEvents"]
        assert len(jsonl_path.read_text().splitlines()) == 1

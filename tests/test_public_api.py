"""Public-API consistency: __all__ names exist, modules import clean."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.common",
    "repro.dram",
    "repro.memctrl",
    "repro.cache",
    "repro.noc",
    "repro.cpu",
    "repro.workloads",
    "repro.core",
    "repro.sim",
    "repro.security",
    "repro.ga",
    "repro.analysis",
    "repro.obs",
    "repro.lint",
    "repro.resilience",
]

MODULES = PACKAGES + [
    "repro.cli",
    "repro.obs.tracer",
    "repro.obs.metrics",
    "repro.obs.monitor",
    "repro.obs.hub",
    "repro.cpu.trace_io",
    "repro.core.epoch_shaper",
    "repro.ga.phase",
    "repro.memctrl.write_queue",
    "repro.noc.mesh",
    "repro.security.bounds",
    "repro.security.prober",
    "repro.sim.bandwidth",
    "repro.analysis.sweeps",
    "repro.workloads.phased",
    "repro.resilience.snapshot",
    "repro.resilience.watchdog",
    "repro.resilience.faults",
    "repro.resilience.scenarios",
    "repro.resilience.runtime",
]


@pytest.mark.parametrize("name", MODULES)
def test_module_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize("name", PACKAGES)
def test_dunder_all_resolves(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", None)
    if exported is None:
        pytest.skip(f"{name} declares no __all__")
    for symbol in exported:
        assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol}"


@pytest.mark.parametrize("name", PACKAGES)
def test_package_has_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__ and len(module.__doc__.strip()) > 40


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2

"""Tests for the analytical leakage bounds (paper IV-B3/IV-B4)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.core.bins import BinConfiguration
from repro.security.bounds import (
    bdc_leakage_bound,
    epoch_rate_leakage_bound,
    leakage_per_second,
    replenishment_window_leakage_bound,
)


class TestWindowBound:
    def test_equals_credit_total(self):
        config = BinConfiguration((3, 0, 2, 1))
        assert replenishment_window_leakage_bound(config) == 6

    def test_single_credit(self):
        assert replenishment_window_leakage_bound(BinConfiguration((1,))) == 1


class TestEpochBound:
    def test_formula(self):
        assert epoch_rate_leakage_bound(10, 4) == pytest.approx(20.0)

    def test_single_rate_leaks_nothing(self):
        assert epoch_rate_leakage_bound(100, 1) == 0.0

    def test_zero_epochs(self):
        assert epoch_rate_leakage_bound(0, 8) == 0.0

    def test_rejects_negative_epochs(self):
        with pytest.raises(ConfigurationError):
            epoch_rate_leakage_bound(-1, 4)

    def test_rejects_empty_rate_set(self):
        with pytest.raises(ConfigurationError):
            epoch_rate_leakage_bound(5, 0)

    @given(st.integers(min_value=0, max_value=1000),
           st.integers(min_value=1, max_value=64))
    def test_monotone_in_both_arguments(self, epochs, rates):
        base = epoch_rate_leakage_bound(epochs, rates)
        assert epoch_rate_leakage_bound(epochs + 1, rates) >= base
        assert epoch_rate_leakage_bound(epochs, rates + 1) >= base


class TestBdcBound:
    def test_takes_minimum(self):
        assert bdc_leakage_bound(0.5, 0.2) == 0.2
        assert bdc_leakage_bound(0.1, 0.9) == 0.1

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            bdc_leakage_bound(-0.1, 0.5)

    @given(st.floats(min_value=0, max_value=10),
           st.floats(min_value=0, max_value=10))
    def test_never_exceeds_either_stage(self, a, b):
        bound = bdc_leakage_bound(a, b)
        assert bound <= a and bound <= b


class TestLeakagePerSecond:
    def test_conversion(self):
        # 1 bit per 2400-cycle window at 2.4 GHz = 1M bits/s.
        assert leakage_per_second(1.0, 2400, clock_hz=2.4e9) == pytest.approx(
            1e6
        )

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            leakage_per_second(1.0, 0)
        with pytest.raises(ConfigurationError):
            leakage_per_second(1.0, 100, clock_hz=0)

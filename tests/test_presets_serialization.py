"""Tests for DRAM timing presets, config serialization, and the
system watchdog."""

import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.core.bins import BinConfiguration, BinSpec
from repro.core.serialization import (
    config_from_dict,
    config_to_dict,
    load_config,
    save_config,
)
from repro.dram.presets import (
    DDR3_1066,
    DDR3_1333,
    DDR3_1600,
    DDR4_2400,
    PRESETS,
    timing_preset,
)


class TestPresets:
    def test_lookup(self):
        assert timing_preset("ddr3-1333") is DDR3_1333
        assert timing_preset("DDR4-2400") is DDR4_2400

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            timing_preset("ddr5-6400")

    def test_all_presets_valid(self):
        # Construction already validates; spot-check invariants.
        for name, timing in PRESETS.items():
            assert timing.tRC == timing.tRAS + timing.tRP, name
            assert timing.row_hit_latency() < timing.row_conflict_latency()

    def test_cas_scales_with_speed_grade(self):
        assert DDR3_1066.tCAS < DDR3_1333.tCAS < DDR3_1600.tCAS < DDR4_2400.tCAS

    def test_presets_run_a_system(self):
        from repro.sim.system import SystemBuilder
        from repro.workloads.spec import make_trace

        for timing in (DDR3_1066, DDR4_2400):
            builder = SystemBuilder(seed=1).with_dram(timing=timing)
            builder.add_core(make_trace("gcc", 200))
            report = builder.build().run(10_000)
            assert report.core(0).retired_instructions > 0

    def test_slower_grade_higher_latency(self):
        from repro.sim.system import SystemBuilder
        from repro.workloads.spec import make_trace

        def latency(timing):
            builder = SystemBuilder(seed=1).with_dram(timing=timing)
            builder.add_core(make_trace("mcf", 800))
            report = builder.build().run(15_000, stop_when_done=False)
            return report.core(0).mean_memory_latency()

        assert latency(DDR4_2400) > latency(DDR3_1066)


class TestSerialization:
    def test_round_trip_dict(self):
        spec = BinSpec()
        config = BinConfiguration((5,) * 10)
        spec2, config2 = config_from_dict(config_to_dict(spec, config))
        assert spec2 == spec
        assert config2 == config

    def test_round_trip_file(self, tmp_path):
        spec = BinSpec(edges=(1, 2, 4, 8), replenish_period=64)
        config = BinConfiguration((1, 2, 3, 4))
        path = tmp_path / "shape.json"
        save_config(spec, config, path)
        spec2, config2 = load_config(path)
        assert spec2.edges == (1, 2, 4, 8)
        assert config2.credits == (1, 2, 3, 4)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            config_from_dict({
                "format": "repro-shaping-config-v1",
                "edges": [1, 2],
                "replenish_period": 64,
                "credits": [1, 2, 3],
            })

    def test_rejects_unknown_format(self):
        with pytest.raises(ConfigurationError):
            config_from_dict({"format": "v0", "edges": [1],
                              "replenish_period": 8, "credits": [1]})

    def test_rejects_missing_fields(self):
        with pytest.raises(ConfigurationError):
            config_from_dict({"format": "repro-shaping-config-v1"})

    def test_rejects_invalid_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_config(path)

    def test_mismatched_spec_config_rejected_on_save(self):
        with pytest.raises(ConfigurationError):
            config_to_dict(BinSpec(), BinConfiguration((1, 2)))


class TestWatchdog:
    def test_deadlocked_shaping_raises(self):
        """A shaper that can never release must trip the watchdog, not
        spin forever."""
        from repro.core.request_shaper import RequestCamouflage
        from repro.core.shaper import BinShaper
        from repro.sim.system import RequestShapingPlan, SystemBuilder
        from repro.workloads.spec import make_trace

        # Top-bin-only credits with fakes disabled: once the first
        # release happens, a waiting request with small delta can
        # still go at delta>=512 — so to force a true deadlock we use
        # a monkeypatched shaper that never grants.
        builder = SystemBuilder(seed=1)
        builder.add_core(
            make_trace("mcf", 500),
            request_shaping=RequestShapingPlan(
                config=BinConfiguration((4,) * 10), generate_fake=False
            ),
        )
        system = builder.build()
        system.request_paths[0].shaper.can_release_real = lambda cycle: False
        with pytest.raises(SimulationError):
            system.run(100_000, stop_when_done=False, watchdog_cycles=5_000)

    def test_watchdog_quiet_on_healthy_run(self):
        from repro.sim.system import SystemBuilder
        from repro.workloads.spec import make_trace

        builder = SystemBuilder(seed=1)
        builder.add_core(make_trace("gcc", 300))
        report = builder.build().run(20_000, watchdog_cycles=2_000)
        assert report.core(0).retired_instructions > 0

    def test_watchdog_ignores_finished_cores(self):
        from repro.cpu.trace import MemoryTrace, TraceRecord
        from repro.sim.system import SystemBuilder

        builder = SystemBuilder(seed=1)
        builder.add_core(MemoryTrace([TraceRecord(0, 0)], name="one"))
        system = builder.build()
        # Long idle tail after completion must not trip the watchdog.
        system.run(30_000, stop_when_done=False, watchdog_cycles=2_000)

"""Columnar engine: kernels, feature flag, and engine-level contracts.

The broad bit-identity matrix lives in ``test_engine_equivalence.py``
(every fast case and the randomized slow sweeps run all three
engines) and the fault/snapshot matrices in ``test_resilience_*``.
This file covers what those cannot: the kernel module's numpy/numba
resolution (including the numba-absent graceful fallback demanded by
the feature-flag contract), the :class:`ColumnarEngine` API surface
itself, snapshot digests across engines, and the executor's
chunk-splitting helpers.
"""

import builtins

import numpy as np
import pytest

from repro.core.bins import BinSpec, constant_rate_config, uniform_config
from repro.parallel.executor import _call_task_chunk, _split_common
from repro.sim import ColumnarEngine
from repro.sim._kernels import (
    NO_EVENT,
    Kernels,
    get_kernels,
    jit_requested,
)
from repro.sim.stats import report_digest
from repro.sim.system import (
    RequestShapingPlan,
    ResponseShapingPlan,
    SystemBuilder,
)
from repro.workloads import make_trace

SPEC = BinSpec()


def _shaped_system(seed=11, response=False):
    builder = SystemBuilder(seed=seed)
    builder.add_core(
        make_trace("gcc", 200, seed=seed),
        request_shaping=RequestShapingPlan(uniform_config(SPEC, 2)),
        response_shaping=(
            ResponseShapingPlan(constant_rate_config(SPEC, 256))
            if response
            else None
        ),
    )
    builder.add_core(make_trace("astar", 200, seed=seed + 1))
    return builder.build()


# -- kernel resolution ----------------------------------------------------


class TestKernels:
    def test_no_event_is_int64_max(self):
        assert NO_EVENT == np.iinfo(np.int64).max

    def test_numpy_kernels_exact(self):
        horizons = np.array([40, 7, NO_EVENT, 12], dtype=np.int64)
        kernels = Kernels(use_jit=False)
        assert kernels.min_horizon(horizons) == 7
        assert kernels.runnable_count(horizons, 12) == 2
        assert kernels.runnable_count(horizons, 6) == 0

    def test_flag_parsing(self):
        assert not jit_requested(env={})
        assert not jit_requested(env={"REPRO_NUMBA": ""})
        assert not jit_requested(env={"REPRO_NUMBA": "0"})
        assert jit_requested(env={"REPRO_NUMBA": "1"})
        assert jit_requested(env={"REPRO_NUMBA": "yes"})

    def test_numba_absent_degrades_gracefully(self, monkeypatch):
        """REPRO_NUMBA=1 without numba must fall back silently.

        The import is blocked explicitly so the test pins the absent
        path even on machines that do have numba installed.
        """
        monkeypatch.setenv("REPRO_NUMBA", "1")
        real_import = builtins.__import__

        def no_numba(name, *args, **kwargs):
            if name == "numba" or name.startswith("numba."):
                raise ImportError("numba deliberately unavailable")
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(builtins, "__import__", no_numba)
        kernels = Kernels()
        assert kernels.jit_requested
        assert not kernels.jit_active
        horizons = np.array([3, NO_EVENT], dtype=np.int64)
        assert kernels.min_horizon(horizons) == 3
        assert kernels.runnable_count(horizons, 3) == 1

    def test_get_kernels_tracks_flag_changes(self, monkeypatch):
        monkeypatch.delenv("REPRO_NUMBA", raising=False)
        off = get_kernels()
        assert not off.jit_requested
        monkeypatch.setenv("REPRO_NUMBA", "1")
        on = get_kernels()
        assert on.jit_requested
        assert on is not off
        monkeypatch.delenv("REPRO_NUMBA", raising=False)
        assert not get_kernels().jit_requested

    def test_engine_runs_under_flag_without_numba(self, monkeypatch):
        """A full columnar run with the flag set (and numba absent on
        this image) must match the reference bit for bit."""
        monkeypatch.setenv("REPRO_NUMBA", "1")
        flagged = _shaped_system().run(15_000, engine="columnar")
        monkeypatch.delenv("REPRO_NUMBA")
        plain = _shaped_system().run(15_000, engine="columnar")
        baseline = _shaped_system().run(15_000, engine="cycle")
        assert flagged == plain == baseline


# -- the engine object itself ---------------------------------------------


class TestColumnarEngine:
    def test_direct_api_matches_system_run(self):
        via_system = _shaped_system().run(20_000, engine="columnar")
        direct = ColumnarEngine(_shaped_system()).run(20_000)
        assert via_system == direct

    def test_report_digest_engine_invariant(self):
        digests = {
            report_digest(_shaped_system(response=True).run(
                20_000, engine=engine))
            for engine in ("cycle", "next_event", "columnar")
        }
        assert len(digests) == 1

    def test_stop_when_done_false_runs_full_window(self):
        report = _shaped_system().run(
            12_000, engine="columnar", stop_when_done=False
        )
        assert report.cycles_run == 12_000

    def test_ledger_covers_every_station(self):
        engine = ColumnarEngine(_shaped_system(response=True))
        # 2 cores + 2 req paths + req link + controller + 2 resp paths
        # + resp link = 9 stations; the ledger, its scalar mirror and
        # the station list must agree on the count.
        assert len(engine._stations) == 9
        assert len(engine._h) == 9
        assert engine._col.shape[0] == 9


# -- executor chunk helpers ------------------------------------------------


def _double(payload):
    return {"y": payload["x"] * 2, "tag": payload["tag"]}


class TestChunkHelpers:
    def test_split_factors_common_keys(self):
        payloads = [
            {"x": 1, "tag": "sweep", "edges": [1, 2, 3]},
            {"x": 2, "tag": "sweep", "edges": [1, 2, 3]},
        ]
        shared, deltas = _split_common(payloads)
        assert shared == {"tag": "sweep", "edges": [1, 2, 3]}
        assert deltas == [{"x": 1}, {"x": 2}]
        for original, delta in zip(payloads, deltas):
            assert {**shared, **delta} == original

    def test_split_keeps_type_distinctions(self):
        # 1 == True in Python; factoring must not swap one for the
        # other during reconstruction.
        shared, deltas = _split_common([{"flag": True}, {"flag": 1}])
        assert shared is None
        assert deltas == [{"flag": True}, {"flag": 1}]

    def test_split_passthrough_for_non_dicts(self):
        shared, deltas = _split_common([(1, 2), (1, 3)])
        assert shared is None
        assert deltas == [(1, 2), (1, 3)]

    def test_chunk_trampoline_rebuilds_and_reports_inband(self):
        shared, deltas = _split_common(
            [{"x": 3, "tag": "t"}, {"x": 4, "tag": "t"}]
        )
        items = [(delta, None) for delta in deltas]
        outcomes = _call_task_chunk(_double, shared, items)
        assert outcomes == [
            (True, {"y": 6, "tag": "t"}),
            (True, {"y": 8, "tag": "t"}),
        ]

    def test_chunk_trampoline_isolates_failures(self):
        def sometimes(payload):
            if payload["x"] == 0:
                raise ValueError("boom")
            return payload["x"]

        outcomes = _call_task_chunk(
            sometimes, None, [({"x": 1}, None), ({"x": 0}, None),
                              ({"x": 2}, None)]
        )
        assert outcomes[0] == (True, 1)
        assert outcomes[2] == (True, 2)
        ok, error = outcomes[1]
        assert not ok and isinstance(error, ValueError)


@pytest.mark.slow
def test_long_run_snapshot_digests_match():
    """Checkpointed long runs digest identically across engines."""
    digests = set()
    for engine in ("cycle", "next_event", "columnar"):
        report = _shaped_system(response=True).run(60_000, engine=engine)
        digests.add(report_digest(report))
    assert len(digests) == 1

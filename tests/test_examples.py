"""Smoke tests: every example script must run clean end to end.

Each example asserts its own headline claim internally (e.g. the
covert demo asserts the key is hidden), so a zero exit status means
the demonstrated behaviour actually held.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

#: tune_with_ga runs a full GA CONFIG phase (~1 minute) — exercised by
#: the GA benchmarks instead.
FAST_EXAMPLES = [
    "quickstart.py",
    "covert_channel_demo.py",
    "side_channel_defense.py",
    "pin_monitoring_defense.py",
    "phase_adaptive_tuning.py",
    "explore_tradeoff.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stdout[-2000:]}\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script} produced no output"


def test_all_examples_are_listed():
    """Every example on disk is either smoke-tested or known-slow."""
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    covered = set(FAST_EXAMPLES) | {"tune_with_ga.py"}
    assert on_disk == covered

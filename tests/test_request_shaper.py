"""Unit tests for Request Camouflage (ReqC)."""

import pytest

from repro.common.rng import DeterministicRng
from repro.core.bins import BinConfiguration, BinSpec
from repro.core.request_shaper import PassthroughShaper, RequestCamouflage
from repro.core.shaper import BinShaper
from repro.memctrl.transaction import MemoryTransaction, TransactionType
from repro.noc.link import SharedLink


def make_reqc(config=None, spec=None, generate_fake=True, buffer_capacity=8):
    spec = spec or BinSpec(edges=(1, 2, 4, 8), replenish_period=32)
    config = config or BinConfiguration((2, 2, 2, 2))
    link = SharedLink(num_ports=1, latency=1, port_capacity=4)
    reqc = RequestCamouflage(
        core_id=0,
        shaper=BinShaper(spec, config),
        link=link,
        port=0,
        rng=DeterministicRng(7),
        address_space_bytes=1 << 20,
        buffer_capacity=buffer_capacity,
        generate_fake=generate_fake,
    )
    return reqc, link


def make_txn(cycle=0):
    return MemoryTransaction(
        core_id=0, address=0x1000, kind=TransactionType.READ,
        created_cycle=cycle,
    )


class TestBuffering:
    def test_accepts_until_capacity(self):
        reqc, _ = make_reqc(buffer_capacity=2)
        assert reqc.can_accept(0)
        reqc.submit(make_txn(), 0)
        reqc.submit(make_txn(), 0)
        assert not reqc.can_accept(0)

    def test_occupancy(self):
        reqc, _ = make_reqc()
        reqc.submit(make_txn(), 0)
        assert reqc.occupancy == 1


class TestRelease:
    def test_real_release_stamps_and_injects(self):
        reqc, link = make_reqc()
        txn = make_txn(0)
        reqc.submit(txn, 0)
        reqc.tick(1)
        assert txn.shaper_release_cycle == 1
        assert link.occupancy(0) == 1
        assert reqc.real_sent == 1

    def test_no_release_without_credit(self):
        config = BinConfiguration((0, 0, 0, 1))  # only the edge-8 bin
        reqc, link = make_reqc(config=config)
        txn = make_txn(0)
        reqc.submit(txn, 0)
        for cycle in range(1, 8):
            reqc.tick(cycle)
        assert reqc.real_sent == 0
        assert reqc.stall_cycles == 7
        reqc.tick(8)
        assert reqc.real_sent == 1

    def test_link_backpressure_blocks_release(self):
        reqc, link = make_reqc()
        # Fill the link port (capacity 4) without ticking the link;
        # gaps of 8 cycles keep credits eligible for every release.
        for cycle in (8, 16, 24, 31):
            reqc.submit(make_txn(), cycle)
            reqc.tick(cycle)
        assert reqc.real_sent == 4
        assert not link.can_inject(0)
        reqc.submit(make_txn(), 32)
        reqc.tick(40)
        assert reqc.real_sent == 4  # port full blocks even with credits

    def test_fifo_order(self):
        reqc, link = make_reqc()
        a, b = make_txn(), make_txn()
        reqc.submit(a, 0)
        reqc.submit(b, 0)
        reqc.tick(1)
        reqc.tick(2)
        assert link.ports[0].pop() is a
        assert link.ports[0].pop() is b


class TestFakeGeneration:
    def test_fake_fills_unused_credits(self):
        reqc, link = make_reqc()
        # Period 1 passes with no traffic: all credits latch as unused.
        for cycle in range(1, 40):
            reqc.tick(cycle)
        assert reqc.fake_sent > 0

    def test_fakes_marked_fake(self):
        reqc, link = make_reqc()
        for cycle in range(1, 40):
            reqc.tick(cycle)
        while link.ports[0].occupancy:
            assert link.ports[0].pop().is_fake

    def test_fake_addresses_line_aligned_and_bounded(self):
        reqc, link = make_reqc()
        for cycle in range(1, 64):
            reqc.tick(cycle)
            while link.ports[0].occupancy:
                txn = link.ports[0].pop()
                assert txn.address % 64 == 0
                assert 0 <= txn.address < (1 << 20)

    def test_no_fakes_when_disabled(self):
        reqc, _ = make_reqc(generate_fake=False)
        for cycle in range(1, 100):
            reqc.tick(cycle)
        assert reqc.fake_sent == 0

    def test_real_has_priority_over_fake(self):
        reqc, link = make_reqc()
        # Latch unused credits (quiet first period).
        for cycle in range(1, 33):
            reqc.tick(cycle)
        while link.ports[0].occupancy:  # drain any warm-up fakes
            link.ports[0].pop()
        txn = make_txn(33)
        reqc.submit(txn, 33)
        reqc.tick(34)
        # The release this cycle must be the real transaction.
        released = link.ports[0].pop()
        assert released is txn


class TestHistograms:
    def test_intrinsic_records_submissions(self):
        reqc, _ = make_reqc()
        reqc.submit(make_txn(), 0)
        reqc.submit(make_txn(), 5)
        assert reqc.intrinsic_histogram.total == 1
        assert reqc.intrinsic_histogram.gaps == (5,)

    def test_shaped_records_releases_including_fakes(self):
        reqc, _ = make_reqc()
        for cycle in range(1, 40):
            reqc.tick(cycle)
        assert reqc.shaped_histogram.total == max(0, reqc.fake_sent - 1)


class TestPassthrough:
    def test_forwards_immediately(self):
        link = SharedLink(num_ports=1, latency=1)
        p = PassthroughShaper(0, link, 0)
        txn = make_txn()
        p.submit(txn, 0)
        p.tick(3)
        assert txn.shaper_release_cycle == 3
        assert link.occupancy(0) == 1

    def test_shaped_histogram_is_intrinsic(self):
        link = SharedLink(num_ports=1, latency=1)
        p = PassthroughShaper(0, link, 0)
        assert p.shaped_histogram is p.intrinsic_histogram

    def test_backpressure(self):
        link = SharedLink(num_ports=1, latency=1, port_capacity=1)
        p = PassthroughShaper(0, link, 0, buffer_capacity=1)
        p.submit(make_txn(), 0)
        p.tick(0)
        p.submit(make_txn(), 1)
        assert not p.can_accept(0)
        p.tick(1)  # port full: stays buffered
        assert p.occupancy == 1

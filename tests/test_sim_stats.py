"""Unit tests for statistics containers (CoreStats / SystemReport)."""

import numpy as np
import pytest

from repro.core.distribution import InterArrivalHistogram
from repro.sim.stats import CoreStats, SystemReport


def make_stats(core_id=0, cycles=1000, retired=2000, latencies=(50, 60, 70),
               stall=100, response_times=None):
    latencies = list(latencies)
    if response_times is None:
        response_times = [(100 + 10 * i, lat) for i, lat in enumerate(latencies)]
    return CoreStats(
        core_id=core_id, trace_name="t", cycles=cycles,
        retired_instructions=retired, finish_cycle=None,
        demand_requests=len(latencies), writeback_requests=0,
        fake_requests_sent=5, fake_responses_sent=2,
        memory_stall_cycles=stall, llc_misses=10, llc_accesses=100,
        request_intrinsic=InterArrivalHistogram(),
        request_shaped=InterArrivalHistogram(),
        response_intrinsic=InterArrivalHistogram(),
        response_shaped=InterArrivalHistogram(),
        memory_latencies=latencies,
        response_times=response_times,
    )


def make_report(stats_list):
    return SystemReport(
        cycles_run=1000, cores=stats_list, row_hits=80, row_misses=20,
        refreshes=1, request_link_grants=50, response_link_grants=50,
        scheduler_name="fr-fcfs",
    )


class TestCoreStats:
    def test_ipc(self):
        assert make_stats(cycles=1000, retired=2000).ipc == 2.0

    def test_ipc_zero_cycles(self):
        assert make_stats(cycles=0, retired=0).ipc == 0.0

    def test_stall_fraction(self):
        assert make_stats(cycles=1000, stall=250).memory_stall_fraction == 0.25

    def test_mean_latency(self):
        assert make_stats(latencies=(40, 60)).mean_memory_latency() == 50.0

    def test_mean_latency_empty(self):
        assert make_stats(latencies=()).mean_memory_latency() == 0.0

    def test_latency_percentile(self):
        stats = make_stats(latencies=tuple(range(1, 101)))
        assert stats.latency_percentile(50) == pytest.approx(50.5)

    def test_latency_percentile_empty(self):
        # Regression: a run that retires no memory requests (tiny cycle
        # budget, cache-resident trace) must not crash the percentile.
        stats = make_stats(latencies=(), response_times=[])
        assert stats.latency_percentile(50) == 0.0
        assert stats.latency_percentile(95) == 0.0

    def test_accumulated_response_time_monotone(self):
        acc = make_stats(latencies=(10, 20, 30)).accumulated_response_time()
        assert list(acc) == [10, 30, 60]

    def test_accumulated_orders_by_delivery(self):
        stats = make_stats(
            latencies=(10, 20),
            response_times=[(200, 20), (100, 10)],  # out of order
        )
        assert list(stats.accumulated_response_time()) == [10, 30]

    def test_accumulated_empty(self):
        stats = make_stats(latencies=(), response_times=[])
        assert stats.accumulated_response_time().size == 0


class TestSystemReport:
    def test_total_throughput(self):
        report = make_report([
            make_stats(core_id=0, retired=1000),
            make_stats(core_id=1, retired=3000),
        ])
        assert report.total_throughput() == pytest.approx(4.0)

    def test_weighted_speedup(self):
        report = make_report([make_stats(retired=1000)])  # IPC 1.0
        assert report.weighted_speedup_vs([2.0]) == pytest.approx(0.5)

    def test_weighted_speedup_rejects_mismatch(self):
        report = make_report([make_stats()])
        with pytest.raises(ValueError):
            report.weighted_speedup_vs([1.0, 2.0])

    def test_average_slowdown(self):
        report = make_report([
            make_stats(core_id=0, retired=1000),   # IPC 1 → slowdown 2
            make_stats(core_id=1, retired=2000),   # IPC 2 → slowdown 1
        ])
        assert report.average_slowdown_vs([2.0, 2.0]) == pytest.approx(1.5)

    def test_average_slowdown_skips_dead_cores(self):
        report = make_report([
            make_stats(core_id=0, retired=0, cycles=100),  # IPC 0
            make_stats(core_id=1, retired=100, cycles=100),
        ])
        assert np.isfinite(report.average_slowdown_vs([1.0, 1.0]))

    def test_row_hit_rate(self):
        assert make_report([make_stats()]).row_hit_rate() == pytest.approx(0.8)

    def test_row_hit_rate_no_commands(self):
        # Regression: zero DRAM activity (run too short for any access
        # to reach the controller) must report 0.0, not divide by zero.
        report = SystemReport(
            cycles_run=10, cores=[make_stats(latencies=(),
                                             response_times=[])],
            row_hits=0, row_misses=0, refreshes=0,
            request_link_grants=0, response_link_grants=0,
            scheduler_name="fr-fcfs",
        )
        assert report.row_hit_rate() == 0.0

    def test_summary_lines(self):
        lines = make_report([make_stats()]).summary_lines()
        assert len(lines) == 2
        assert "fr-fcfs" in lines[0]
        assert "core0" in lines[1]

    def test_core_accessor(self):
        report = make_report([make_stats(core_id=0), make_stats(core_id=1)])
        assert report.core(1).core_id == 1
        assert report.num_cores == 2

"""Unit tests for rank-level constraints: tRRD, tFAW, tWTR, refresh."""

import pytest

from repro.common.errors import ProtocolError
from repro.dram.rank import Rank
from repro.dram.timing import DramTiming


@pytest.fixture
def rank(timing):
    return Rank(timing, banks_per_rank=8)


class TestTrrd:
    def test_activates_to_different_banks_respect_trrd(self, rank, timing):
        rank.activate(0, 0, row=1)
        assert not rank.can_activate(1, timing.tRRD - 1)
        rank.activate(1, timing.tRRD, row=1)

    def test_trrd_violation_raises(self, rank, timing):
        rank.activate(0, 0, row=1)
        with pytest.raises(ProtocolError):
            rank.activate(1, timing.tRRD - 1, row=1)


class TestTfaw:
    def test_fifth_activate_waits_for_window(self, rank, timing):
        """At most four ACTIVATEs per rolling tFAW window."""
        cycle = 0
        for bank in range(4):
            rank.activate(bank, cycle, row=1)
            cycle += timing.tRRD
        # Four activates issued within tFAW; the fifth must wait until
        # the first one (cycle 0) ages out.
        earliest = rank.earliest_activate(4)
        assert earliest >= timing.tFAW
        assert not rank.can_activate(4, timing.tFAW - 1)
        rank.activate(4, max(earliest, timing.tFAW), row=1)

    def test_slow_activates_unconstrained_by_tfaw(self, rank, timing):
        """Activates spaced wider than tFAW/4 never hit the limit."""
        gap = timing.tFAW  # ultra-conservative spacing
        for i, bank in enumerate(range(5)):
            rank.activate(bank, i * gap, row=1)
        assert rank.banks[4].open_row == 1


class TestTwtr:
    def test_read_after_write_waits_twtr(self, rank, timing):
        rank.activate(0, 0, row=1)
        rank.activate(1, timing.tRRD, row=2)
        t = timing.tRRD + timing.tRCD
        rank.write(0, t, row=1)
        blocked_until = t + timing.tCWL + timing.tBURST + timing.tWTR
        # A read to ANY bank of the rank is blocked.
        assert not rank.can_read(1, blocked_until - 1, row=2)
        rank.read(1, blocked_until, row=2)

    def test_write_after_write_not_blocked_by_twtr(self, rank, timing):
        rank.activate(0, 0, row=1)
        t = timing.tRCD
        rank.write(0, t, row=1)
        assert rank.can_write(0, t + timing.tCCD, row=1)

    def test_read_violating_twtr_raises(self, rank, timing):
        rank.activate(0, 0, row=1)
        t = timing.tRCD
        rank.write(0, t, row=1)
        with pytest.raises(ProtocolError):
            rank.read(0, t + timing.tCCD, row=1)


class TestRefresh:
    def test_refresh_requires_all_banks_precharged(self, rank, timing):
        rank.activate(0, 0, row=1)
        assert not rank.can_refresh(timing.tRCD)
        with pytest.raises(ProtocolError):
            rank.refresh(timing.tRCD)

    def test_refresh_blocks_every_bank(self, rank, timing):
        rank.refresh(0)
        assert rank.refresh_count == 1
        for bank_index in range(8):
            assert not rank.can_activate(bank_index, timing.tRFC - 1)

    def test_refresh_after_trfc_allows_activates(self, rank, timing):
        rank.refresh(0)
        rank.activate(0, timing.tRFC, row=1)
        assert rank.banks[0].open_row == 1


class TestAllBanksPrecharged:
    def test_initially_true(self, rank):
        assert rank.all_banks_precharged()

    def test_false_with_open_row(self, rank):
        rank.activate(3, 0, row=9)
        assert not rank.all_banks_precharged()

    def test_true_again_after_precharge(self, rank, timing):
        rank.activate(3, 0, row=9)
        rank.precharge(3, timing.tRAS)
        assert rank.all_banks_precharged()

"""Unit tests for the two-level cache hierarchy."""

import pytest

from repro.cache.cache import CacheConfig
from repro.cache.hierarchy import AccessOutcome, CacheHierarchy, HierarchyConfig


def small_hierarchy():
    """A hierarchy small enough to force evictions quickly."""
    return CacheHierarchy(
        HierarchyConfig(
            l1=CacheConfig(size_bytes=2 * 64 * 2, ways=2, line_bytes=64),
            l2=CacheConfig(size_bytes=4 * 64 * 4, ways=4, line_bytes=64),
            l1_latency=1,
            l2_latency=8,
        )
    )


class TestAccessPath:
    def test_cold_access_misses(self):
        h = CacheHierarchy()
        result = h.access(0, is_write=False)
        assert result.outcome is AccessOutcome.MISS
        assert result.line_address == 0

    def test_fill_then_l1_hit(self):
        h = CacheHierarchy()
        h.fill(0, is_write=False)
        result = h.access(0, is_write=False)
        assert result.outcome is AccessOutcome.L1_HIT
        assert result.latency == h.config.l1_latency

    def test_l2_hit_after_l1_eviction(self):
        h = small_hierarchy()
        h.fill(0, is_write=False)
        # Fill enough same-L1-set lines to evict line 0 from L1 (2 sets,
        # 2 ways: lines 0, 128, 256 share L1 set 0).
        h.fill(128, is_write=False)
        h.fill(256, is_write=False)
        result = h.access(0, is_write=False)
        assert result.outcome is AccessOutcome.L2_HIT
        assert result.latency == h.config.l2_latency

    def test_l2_hit_promotes_to_l1(self):
        h = small_hierarchy()
        h.fill(0, is_write=False)
        h.fill(128, is_write=False)
        h.fill(256, is_write=False)
        h.access(0, is_write=False)   # L2 hit, promotes
        result = h.access(0, is_write=False)
        assert result.outcome is AccessOutcome.L1_HIT

    def test_line_granularity(self):
        h = CacheHierarchy()
        h.fill(0, is_write=False)
        assert h.access(63, False).outcome is AccessOutcome.L1_HIT


class TestWritebacks:
    def test_clean_eviction_no_writeback(self):
        h = small_hierarchy()
        # L2: 4 sets x 4 ways; lines k*256 all map to L2 set 0.
        for i in range(4):
            assert h.fill(i * 256, is_write=False) == []
        assert h.fill(4 * 256, is_write=False) == []

    def test_dirty_eviction_writes_back(self):
        h = small_hierarchy()
        for i in range(4):
            h.fill(i * 256, is_write=True)
        writebacks = h.fill(4 * 256, is_write=False)
        # Exactly one dirty victim leaves L2 (which one depends on LRU
        # refreshes from absorbed L1 victims).
        assert len(writebacks) == 1
        assert writebacks[0] in {0, 256, 512, 768}

    def test_inclusion_l2_eviction_invalidates_l1(self):
        h = small_hierarchy()
        h.fill(0, is_write=False)
        for i in range(1, 5):
            h.fill(i * 256, is_write=False)
        # Line 0 was evicted from L2; inclusion demands it left L1 too.
        assert not h.l1.lookup(0)
        assert h.access(0, False).outcome is AccessOutcome.MISS

    def test_dirty_l1_victim_absorbed_by_l2(self):
        h = small_hierarchy()
        h.fill(0, is_write=True)
        h.fill(128, is_write=False)
        h.fill(256, is_write=False)  # evicts dirty line 0 from L1
        # Line 0 must still be dirty in L2: filling the L2 set full
        # must eventually write it back.
        for i in range(1, 5):
            writebacks = h.fill(i * 256, is_write=False)
        assert 0 in writebacks


class TestStats:
    def test_llc_miss_count(self):
        h = CacheHierarchy()
        h.access(0, False)
        h.access(1 << 20, False)
        assert h.llc_miss_count == 2
        assert h.llc_access_count == 2

    def test_l1_hits_do_not_touch_l2(self):
        h = CacheHierarchy()
        h.fill(0, is_write=False)
        before = h.llc_access_count
        h.access(0, False)
        assert h.llc_access_count == before

    def test_rejects_mismatched_line_sizes(self):
        with pytest.raises(ValueError):
            CacheHierarchy(
                HierarchyConfig(
                    l1=CacheConfig(size_bytes=1024, ways=2, line_bytes=32),
                    l2=CacheConfig(size_bytes=4096, ways=4, line_bytes=64),
                )
            )

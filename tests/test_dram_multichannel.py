"""Tests for multi-channel / multi-rank DRAM configurations.

The paper's Table II uses 1 channel × 1 rank × 8 banks; the model
supports more, and these tests exercise the cross-channel and
cross-rank independence properties the geometry implies.
"""

import pytest

from repro.dram.address import AddressMapping
from repro.dram.commands import CommandType, DramCommand
from repro.dram.organization import DramOrganization
from repro.dram.system import DramSystem
from repro.dram.timing import DramTiming
from repro.sim.system import SystemBuilder
from repro.workloads.spec import make_trace


@pytest.fixture
def wide_org():
    return DramOrganization(channels=2, ranks_per_channel=2,
                            banks_per_rank=8)


@pytest.fixture
def wide_dram(wide_org):
    return DramSystem(organization=wide_org, enable_refresh=False)


class TestGeometry:
    def test_bit_widths(self, wide_org):
        assert wide_org.channel_bits == 1
        assert wide_org.rank_bits == 1
        assert wide_org.total_banks == 32

    def test_decode_covers_all_channels_and_ranks(self, wide_org):
        mapping = AddressMapping(wide_org)
        seen_channels = set()
        seen_ranks = set()
        for address in range(0, 1 << 26, 64 * 129):
            d = mapping.decode(address)
            seen_channels.add(d.channel)
            seen_ranks.add(d.rank)
        assert seen_channels == {0, 1}
        assert seen_ranks == {0, 1}


class TestChannelIndependence:
    def test_command_buses_independent(self, wide_dram, wide_org):
        """Both channels may issue a command in the same cycle."""
        mapping = AddressMapping(wide_org)
        d0 = next(
            mapping.decode(a) for a in range(0, 1 << 20, 64)
            if mapping.decode(a).channel == 0
        )
        d1 = next(
            mapping.decode(a) for a in range(0, 1 << 20, 64)
            if mapping.decode(a).channel == 1
        )
        act0 = DramCommand(CommandType.ACTIVATE, d0)
        act1 = DramCommand(CommandType.ACTIVATE, d1)
        assert wide_dram.can_issue(act0, 0)
        wide_dram.issue(act0, 0)
        # Same cycle, other channel: still legal.
        assert wide_dram.can_issue(act1, 0)
        wide_dram.issue(act1, 0)

    def test_same_channel_blocked_same_cycle(self, wide_dram, wide_org):
        mapping = AddressMapping(wide_org)
        addresses = [a for a in range(0, 1 << 22, 64)
                     if mapping.decode(a).channel == 0]
        d0 = mapping.decode(addresses[0])
        # Find a second channel-0 address on a different bank.
        d1 = next(
            mapping.decode(a) for a in addresses
            if mapping.decode(a).bank != d0.bank
            or mapping.decode(a).rank != d0.rank
        )
        wide_dram.issue(DramCommand(CommandType.ACTIVATE, d0), 0)
        assert not wide_dram.can_issue(
            DramCommand(CommandType.ACTIVATE, d1), 0
        )

    def test_data_buses_independent(self, wide_dram, wide_org, timing):
        mapping = AddressMapping(wide_org)
        per_channel = {0: None, 1: None}
        for a in range(0, 1 << 22, 64):
            d = mapping.decode(a)
            if per_channel[d.channel] is None:
                per_channel[d.channel] = d
        for d in per_channel.values():
            wide_dram.issue(DramCommand(CommandType.ACTIVATE, d), 0)
        t = timing.tRCD
        end0 = wide_dram.issue(
            DramCommand(CommandType.READ, per_channel[0]), t
        )
        end1 = wide_dram.issue(
            DramCommand(CommandType.READ, per_channel[1]), t
        )
        assert end0 == end1  # concurrent bursts, no shared-bus serialization


class TestRefreshPerRank:
    def test_each_rank_has_own_deadline(self, wide_org):
        dram = DramSystem(organization=wide_org, enable_refresh=True)
        due = dram.refresh_due(dram.timing.tREFI)
        assert set(due) == {(0, 0), (0, 1), (1, 0), (1, 1)}


class TestSystemOnWideDram:
    def test_full_system_runs_on_two_channels(self, wide_org):
        builder = SystemBuilder(seed=2)
        builder.with_dram(organization=wide_org)
        for i in range(2):
            builder.add_core(
                make_trace("gcc", 500, seed=i, base_address=i << 33)
            )
        report = builder.build().run(20000)
        assert all(c.retired_instructions > 0 for c in report.cores)
        assert report.row_hits + report.row_misses > 0

    def test_more_channels_reduce_contention(self):
        def latency(channels):
            builder = SystemBuilder(seed=2)
            builder.with_dram(
                organization=DramOrganization(channels=channels)
            )
            for i in range(4):
                builder.add_core(
                    make_trace("mcf", 2000, seed=i, base_address=i << 33)
                )
            report = builder.build().run(20000, stop_when_done=False)
            return sum(
                c.mean_memory_latency() for c in report.cores
            ) / report.num_cores

        assert latency(2) < latency(1)

"""Tests for the 2D-mesh NoC."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError, ProtocolError
from repro.memctrl.transaction import MemoryTransaction, TransactionType
from repro.noc.mesh import MeshConfig, MeshNetwork


def make_txn(core=0):
    return MemoryTransaction(
        core_id=core, address=0, kind=TransactionType.READ, created_cycle=0
    )


def run_until_delivered(mesh, expected, max_cycles=500):
    arrived = []
    for cycle in range(max_cycles):
        mesh.tick(cycle)
        arrived.extend(mesh.pop_arrivals(cycle))
        if len(arrived) >= expected:
            break
    return arrived


class TestGeometry:
    def test_grid_fits_cores_and_hub(self):
        mesh = MeshNetwork(num_ports=4)
        assert mesh.num_nodes >= 5
        assert mesh.hub_node == mesh.num_nodes - 1

    def test_eight_cores(self):
        mesh = MeshNetwork(num_ports=8)
        assert mesh.width * mesh.height >= 9

    def test_hop_distance_positive(self):
        mesh = MeshNetwork(num_ports=4)
        assert all(mesh.hop_distance(p) >= 1 for p in range(4))

    def test_position_dependent_distance(self):
        """Different cores sit at different distances from the hub."""
        mesh = MeshNetwork(num_ports=8)
        distances = {mesh.hop_distance(p) for p in range(8)}
        assert len(distances) > 1

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            MeshNetwork(num_ports=0)
        with pytest.raises(ConfigurationError):
            MeshNetwork(num_ports=2, direction="sideways")
        with pytest.raises(ConfigurationError):
            MeshConfig(buffer_depth=0)


class TestDeliveryToHub:
    def test_single_transaction_delivered(self):
        mesh = MeshNetwork(num_ports=4)
        txn = make_txn(0)
        mesh.inject(0, txn)
        arrived = run_until_delivered(mesh, 1)
        assert arrived == [txn]

    def test_latency_scales_with_distance(self):
        mesh = MeshNetwork(num_ports=8)
        near = min(range(8), key=mesh.hop_distance)
        far = max(range(8), key=mesh.hop_distance)
        assert mesh.hop_distance(far) > mesh.hop_distance(near)

        def delivery_cycle(port):
            m = MeshNetwork(num_ports=8)
            m.inject(port, make_txn(port))
            for cycle in range(200):
                m.tick(cycle)
                if m.pop_arrivals(cycle):
                    return cycle
            pytest.fail("never delivered")

        assert delivery_cycle(far) > delivery_cycle(near)

    def test_all_cores_deliver(self):
        mesh = MeshNetwork(num_ports=8)
        for port in range(8):
            mesh.inject(port, make_txn(port))
        arrived = run_until_delivered(mesh, 8)
        assert len(arrived) == 8
        assert {t.core_id for t in arrived} == set(range(8))

    def test_dest_not_ready_blocks_ejection(self):
        mesh = MeshNetwork(num_ports=2)
        mesh.inject(0, make_txn(0))
        for cycle in range(50):
            mesh.tick(cycle, dest_ready=False)
        assert mesh.pop_arrivals(50) == []
        assert mesh.in_flight_count == 1
        for cycle in range(50, 100):
            mesh.tick(cycle, dest_ready=True)
        assert len(run_until_delivered(mesh, 1, 1)) <= 1  # already popped?

    def test_grant_trace_records_ejections(self):
        mesh = MeshNetwork(num_ports=2)
        mesh.inject(1, make_txn(1))
        run_until_delivered(mesh, 1)
        assert mesh.total_grants == 1
        assert mesh.grant_trace[0][1] == 1


class TestDeliveryFromHub:
    def test_response_routed_to_core(self):
        mesh = MeshNetwork(num_ports=4, direction="from_hub")
        txn = make_txn(core=2)
        mesh.inject(2, txn)
        arrived = run_until_delivered(mesh, 1)
        assert arrived == [txn]

    def test_multiple_cores_fanout(self):
        mesh = MeshNetwork(num_ports=4, direction="from_hub")
        for core in range(4):
            mesh.inject(core, make_txn(core))
        arrived = run_until_delivered(mesh, 4)
        assert {t.core_id for t in arrived} == set(range(4))


class TestBackpressure:
    def test_port_capacity(self):
        mesh = MeshNetwork(num_ports=2, port_capacity=2)
        mesh.inject(0, make_txn())
        mesh.inject(0, make_txn())
        assert not mesh.can_inject(0)
        with pytest.raises(ProtocolError):
            mesh.inject(0, make_txn())

    def test_hub_stall_fills_buffers_not_crashes(self):
        mesh = MeshNetwork(num_ports=4, port_capacity=8)
        for cycle in range(100):
            for port in range(4):
                if mesh.can_inject(port):
                    mesh.inject(port, make_txn(port))
            mesh.tick(cycle, dest_ready=False)
        assert mesh.pop_arrivals(100) == []
        assert mesh.in_flight_count > 0


class TestConservation:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.lists(st.integers(min_value=0, max_value=7), min_size=1,
                 max_size=40)
    )
    def test_every_injection_delivered_once(self, ports):
        mesh = MeshNetwork(num_ports=8, port_capacity=64)
        sent = []
        for port in ports:
            txn = make_txn(port)
            mesh.inject(port, txn)
            sent.append(txn)
        arrived = run_until_delivered(mesh, len(sent), max_cycles=2000)
        assert len(arrived) == len(sent)
        assert {t.txn_id for t in arrived} == {t.txn_id for t in sent}
        assert mesh.in_flight_count == 0


class TestSystemIntegration:
    def test_full_system_on_mesh(self):
        from repro.sim.system import SystemBuilder
        from repro.workloads.spec import make_trace

        builder = SystemBuilder(seed=4).with_noc(topology="mesh")
        for i in range(4):
            builder.add_core(
                make_trace("gcc", 400, seed=i, base_address=i << 33)
            )
        system = builder.build()
        report = system.run(30000)
        assert all(c.retired_instructions > 0 for c in report.cores)
        assert all(
            system.delivered_count(c) == report.core(c).demand_requests
            for c in range(4)
            if system.cores[c].done
        )

    def test_mesh_position_affects_latency(self):
        """Cores far from the hub see higher memory latency — the
        position-dependent contention the mesh exists to model."""
        from repro.sim.system import SystemBuilder
        from repro.workloads.spec import make_trace

        builder = SystemBuilder(seed=4).with_noc(topology="mesh")
        for i in range(8):
            builder.add_core(
                make_trace("gcc", 400, seed=7, base_address=i << 33)
            )
        system = builder.build()
        report = system.run(40000, stop_when_done=False)
        near = min(range(8), key=system.request_link.hop_distance)
        far = max(range(8), key=system.request_link.hop_distance)
        assert (
            report.core(far).mean_memory_latency()
            > report.core(near).mean_memory_latency()
        )

    def test_rejects_unknown_topology(self):
        from repro.sim.system import SystemBuilder

        with pytest.raises(ConfigurationError):
            SystemBuilder().with_noc(topology="torus")

"""Unit tests for the transaction queue and transaction records."""

import pytest

from repro.common.errors import ConfigurationError, ProtocolError
from repro.memctrl.queue import TransactionQueue
from repro.memctrl.transaction import MemoryTransaction, TransactionType


def make_txn(core=0, address=0, kind=TransactionType.READ, cycle=0):
    return MemoryTransaction(
        core_id=core, address=address, kind=kind, created_cycle=cycle
    )


class TestQueueBasics:
    def test_empty_on_creation(self):
        q = TransactionQueue(4)
        assert q.is_empty and not q.is_full and len(q) == 0

    def test_push_and_len(self):
        q = TransactionQueue(4)
        q.push(make_txn())
        assert len(q) == 1 and not q.is_empty

    def test_full_at_capacity(self):
        q = TransactionQueue(2)
        q.push(make_txn())
        q.push(make_txn())
        assert q.is_full

    def test_push_into_full_raises(self):
        q = TransactionQueue(1)
        q.push(make_txn())
        with pytest.raises(ProtocolError):
            q.push(make_txn())

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            TransactionQueue(0)


class TestOrderingAndRemoval:
    def test_iteration_is_arrival_order(self):
        q = TransactionQueue(8)
        txns = [make_txn(core=i) for i in range(5)]
        for t in txns:
            q.push(t)
        assert [t.core_id for t in q] == [0, 1, 2, 3, 4]

    def test_remove_preserves_order_of_rest(self):
        q = TransactionQueue(8)
        txns = [make_txn(core=i) for i in range(4)]
        for t in txns:
            q.push(t)
        q.remove(txns[1])
        assert [t.core_id for t in q] == [0, 2, 3]

    def test_remove_missing_raises(self):
        q = TransactionQueue(4)
        with pytest.raises(ProtocolError):
            q.remove(make_txn())

    def test_oldest(self):
        q = TransactionQueue(8)
        for i in range(3):
            q.push(make_txn(core=i))
        assert q.oldest().core_id == 0

    def test_oldest_with_predicate(self):
        q = TransactionQueue(8)
        for i in range(3):
            q.push(make_txn(core=i))
        assert q.oldest(lambda t: t.core_id > 0).core_id == 1

    def test_oldest_empty_returns_none(self):
        assert TransactionQueue(4).oldest() is None

    def test_count_for_core(self):
        q = TransactionQueue(8)
        for core in (0, 1, 0, 2, 0):
            q.push(make_txn(core=core))
        assert q.count_for_core(0) == 3
        assert q.count_for_core(1) == 1
        assert q.count_for_core(3) == 0


class TestTransactionRecord:
    def test_unique_ids(self):
        a, b = make_txn(), make_txn()
        assert a.txn_id != b.txn_id

    def test_kind_flags(self):
        assert make_txn(kind=TransactionType.WRITE).is_write
        assert make_txn(kind=TransactionType.FAKE_READ).is_fake
        read = make_txn(kind=TransactionType.READ)
        assert not read.is_write and not read.is_fake

    def test_latency_none_until_delivered(self):
        t = make_txn(cycle=10)
        assert t.memory_latency is None
        t.delivered_cycle = 60
        assert t.memory_latency == 50

    def test_queueing_delay(self):
        t = make_txn()
        t.mc_arrival_cycle = 20
        assert t.queueing_delay is None
        t.issue_cycle = 35
        assert t.queueing_delay == 15

    def test_shaping_delay(self):
        t = make_txn(cycle=5)
        assert t.shaping_delay is None
        t.shaper_release_cycle = 12
        assert t.shaping_delay == 7

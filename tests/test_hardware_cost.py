"""Tests for the hardware cost model (paper III-A3)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.bins import BinSpec
from repro.core.hardware_cost import (
    ShaperCost,
    bdc_per_core_cost,
    request_shaper_cost,
    response_shaper_cost,
)


class TestRequestShaperCost:
    def test_register_files_dominate(self):
        """Three 10x10-bit register files = 300 bits (section III-A3)."""
        cost = request_shaper_cost(BinSpec())
        assert cost.storage_bits >= 300
        # ...but not wildly more: counters and the LFSR are small.
        assert cost.storage_bits < 500

    def test_scales_with_bins(self):
        small = request_shaper_cost(BinSpec(edges=(1, 2, 4, 8),
                                            replenish_period=64))
        big = request_shaper_cost(BinSpec())
        assert big.storage_bits > small.storage_bits

    def test_rejects_bad_widths(self):
        with pytest.raises(ConfigurationError):
            request_shaper_cost(BinSpec(), credit_bits=0)


class TestResponseShaperCost:
    def test_queue_adds_storage(self):
        req = request_shaper_cost(BinSpec())
        resp = response_shaper_cost(BinSpec())
        assert resp.total_bits > req.total_bits
        assert resp.queue_bits == 16 * 64

    def test_rejects_bad_queue(self):
        with pytest.raises(ConfigurationError):
            response_shaper_cost(BinSpec(), queue_entries=0)


class TestPaperClaim:
    def test_under_point_one_percent_of_core(self):
        """The headline III-A3 claim: the full per-core BDC hardware is
        below 0.1% of a two-way OoO core."""
        cost = bdc_per_core_cost(BinSpec())
        assert cost.fraction_of_core() < 0.001

    def test_gate_equivalents_positive_and_small(self):
        cost = bdc_per_core_cost(BinSpec())
        assert 0 < cost.gate_equivalents < 50_000


class TestShaperCostArithmetic:
    def test_totals(self):
        cost = ShaperCost(storage_bits=100, comparator_bits=50,
                          queue_bits=20)
        assert cost.total_bits == 120
        assert cost.gate_equivalents == 120 * 6 + 50

"""Differential tests: the fast engines are bit-identical.

``System.run(..., engine="next_event")`` and
``System.run(..., engine="columnar")`` must produce *exactly* the
same :class:`~repro.sim.stats.SystemReport` as the default per-cycle
loop — every latency, histogram, grant count and fake count.  These
tests build the same system once per engine and compare the full
reports via dataclass equality (histograms compare by value).

Because every assertion here runs all three engines, this file also
pins the next-event loop's cached station scan (the components list
built once per ``run`` window) and the columnar engine's dirty-marked
horizon ledger: a stale cache in either would desynchronise the
stepping sequence and diverge the reports.

The fast cases cover each architectural feature once; the ``slow``
sweep drives randomized combinations and belongs to the extended
suite (``pytest -m slow``).
"""

import random

import pytest

from repro.common.errors import SimulationError
from repro.core.bins import BinSpec, constant_rate_config, uniform_config
from repro.sim.system import (
    EpochShapingPlan,
    RequestShapingPlan,
    ResponseShapingPlan,
    SystemBuilder,
)
from repro.workloads import make_trace

SPEC = BinSpec()


def _shaped_builder(
    seed=7,
    traces=(("gcc", 250), ("astar", 250)),
    request=True,
    response=False,
    strict=False,
    jitter=False,
    epoch=False,
    credits_per_bin=2,
):
    config = uniform_config(SPEC, credits_per_bin)
    builder = SystemBuilder(seed=seed)
    for index, (name, accesses) in enumerate(traces):
        builder.add_core(
            make_trace(name, accesses, seed=seed + index),
            request_shaping=(
                RequestShapingPlan(
                    config, strict_binning=strict, jitter=jitter
                )
                if request and not epoch
                else None
            ),
            response_shaping=(
                ResponseShapingPlan(
                    config, strict_binning=strict, jitter=jitter
                )
                if response
                else None
            ),
            epoch_shaping=EpochShapingPlan() if epoch else None,
        )
    return builder


def _assert_engines_agree(make_builder, cycles=25_000, **run_kwargs):
    baseline = make_builder().build().run(cycles, **run_kwargs)
    for engine in ("next_event", "columnar"):
        fast = make_builder().build().run(cycles, engine=engine,
                                          **run_kwargs)
        assert baseline == fast, f"engine={engine} diverged"
        assert baseline.cycles_run == fast.cycles_run


def test_unknown_engine_rejected():
    builder = SystemBuilder(seed=1)
    builder.add_core(make_trace("gcc", 50))
    with pytest.raises(SimulationError):
        builder.build().run(1000, engine="event")


class TestFastCases:
    def test_unshaped(self):
        _assert_engines_agree(lambda: _shaped_builder(request=False))

    def test_reqc(self):
        _assert_engines_agree(lambda: _shaped_builder())

    def test_bdc_strict(self):
        _assert_engines_agree(
            lambda: _shaped_builder(response=True, strict=True)
        )

    def test_bdc_jitter(self):
        _assert_engines_agree(
            lambda: _shaped_builder(response=True, jitter=True)
        )

    def test_epoch_shaping(self):
        _assert_engines_agree(lambda: _shaped_builder(epoch=True))

    def test_mesh_topology(self):
        _assert_engines_agree(_mesh_builder)

    def test_low_intensity_single_program(self):
        """The Fig 11-style benchmark shape: one quiet core, CS rate."""

        def build():
            builder = SystemBuilder(seed=9)
            builder.add_core(
                make_trace("h264ref", 200, seed=9),
                request_shaping=RequestShapingPlan(
                    constant_rate_config(SPEC, 512)
                ),
            )
            return builder

        _assert_engines_agree(build, cycles=120_000)

    def test_no_early_stop(self):
        _assert_engines_agree(
            lambda: _shaped_builder(response=True),
            cycles=20_000,
            stop_when_done=False,
        )


def _mesh_builder():
    builder = SystemBuilder(seed=5).with_noc(topology="mesh")
    builder.add_core(make_trace("apache", 250, seed=5))
    builder.add_core(make_trace("gcc", 250, seed=6))
    return builder


TRACE_NAMES = ["gcc", "astar", "h264ref", "libquantum", "apache", "sjeng"]
SCHEDULERS = ["frfcfs", "priority", "tp", "fs"]


def _random_builder(seed):
    def build():
        # The generator is re-seeded on every call so both engine runs
        # draw byte-identical configurations.
        rng = random.Random(seed)
        builder = SystemBuilder(seed=seed)
        builder.with_scheduler(rng.choice(SCHEDULERS))
        builder.with_noc(topology=rng.choice(["shared", "mesh"]))
        if rng.random() < 0.3:
            builder.with_write_queue()
        if rng.random() < 0.3:
            builder.with_page_policy("closed")
        for index in range(rng.randint(1, 3)):
            name = rng.choice(TRACE_NAMES)
            style = rng.choice(
                ["none", "reqc", "respc", "bdc", "epoch"]
            )
            strict = rng.random() < 0.5
            jitter = rng.random() < 0.5
            credits = rng.randint(1, 4)
            config = uniform_config(SPEC, credits)
            builder.add_core(
                make_trace(name, 200, seed=seed + index),
                request_shaping=(
                    RequestShapingPlan(
                        config, strict_binning=strict, jitter=jitter
                    )
                    if style in ("reqc", "bdc")
                    else None
                ),
                response_shaping=(
                    ResponseShapingPlan(
                        config, strict_binning=strict, jitter=jitter
                    )
                    if style in ("respc", "bdc")
                    else None
                ),
                epoch_shaping=(
                    EpochShapingPlan() if style == "epoch" else None
                ),
            )
        return builder

    return build


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(24))
def test_randomized_systems_bit_identical(seed):
    _assert_engines_agree(_random_builder(seed), cycles=30_000)


# -- observability under both engines -------------------------------------
#
# The obs layer must itself be engine-invariant: the event stream, the
# interval samples and the monitor history are part of the "same run,
# same artifacts" guarantee, not just the final report.


def _observed_builder(make_builder):
    def build():
        return make_builder().with_observability(
            trace=True,
            sample_interval=1024,
            monitor=True,
            monitor_interval=2048,
        )

    return build


def _assert_obs_identical(make_builder, cycles=25_000):
    build = _observed_builder(make_builder)
    systems = []
    reports = []
    for engine in ("cycle", "next_event", "columnar"):
        system = build().build()
        reports.append(system.run(cycles, engine=engine))
        systems.append(system)
    baseline = systems[0]
    obs_a = baseline.observability
    for fast, report in zip(systems[1:], reports[1:]):
        assert reports[0] == report
        obs_b = fast.observability
        assert obs_a.tracer.events == obs_b.tracer.events
        assert obs_a.tracer.counts == obs_b.tracer.counts
        assert obs_a.sampler.samples == obs_b.sampler.samples
        assert obs_a.monitor.history == obs_b.monitor.history
        assert obs_a.monitor.violations == obs_b.monitor.violations


class TestObservabilityEquivalence:
    def test_bdc_jitter(self):
        _assert_obs_identical(
            lambda: _shaped_builder(response=True, jitter=True)
        )

    def test_epoch_shaping(self):
        _assert_obs_identical(lambda: _shaped_builder(epoch=True))

    def test_mesh_topology(self):
        _assert_obs_identical(_mesh_builder)

    def test_low_intensity_spans_are_filled(self):
        """Long idle spans (the next-event engine's bread and butter)
        must still yield the same sample-by-sample time-series."""

        def build():
            builder = SystemBuilder(seed=9)
            builder.add_core(
                make_trace("h264ref", 200, seed=9),
                request_shaping=RequestShapingPlan(
                    constant_rate_config(SPEC, 512)
                ),
            )
            return builder

        _assert_obs_identical(build, cycles=120_000)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(8))
def test_randomized_observability_identical(seed):
    _assert_obs_identical(_random_builder(seed), cycles=30_000)

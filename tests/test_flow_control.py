"""Tests for return-channel flow control and FS dummy-slot fill.

Both mechanisms were added for fidelity to the paper: the controller's
bounded egress ("rate limit responses and prevent overflow on the
return channels", section V) and Fixed Service's constant injection
via dummy requests (Shafiee'15 as characterized in section II-B).
"""

import pytest

from repro.core.bins import BinConfiguration, BinSpec
from repro.dram.system import DramSystem
from repro.memctrl.controller import MemoryController
from repro.memctrl.schedulers import FixedServiceScheduler
from repro.memctrl.transaction import MemoryTransaction, TransactionType
from repro.sim.system import ResponseShapingPlan, SystemBuilder
from repro.workloads.spec import make_trace


def make_txn(core=0, address=0):
    return MemoryTransaction(
        core_id=core, address=address, kind=TransactionType.READ,
        created_cycle=0,
    )


class TestEgressFlowControl:
    def make_controller(self, egress_capacity=2):
        dram = DramSystem(enable_refresh=False)
        return MemoryController(dram, egress_capacity=egress_capacity)

    def test_egress_room_tracking(self):
        mc = self.make_controller(egress_capacity=2)
        assert mc.egress_has_room(0)
        mc.enqueue(make_txn(address=0), 0)
        mc.enqueue(make_txn(address=8192), 0)
        mc.enqueue(make_txn(address=16384), 0)
        for cycle in range(300):
            mc.tick(cycle)
        # Only two transactions may be completed-and-held; the third
        # stays in the queue until the egress drains.
        assert mc.pending_response_count(0) == 2
        assert len(mc.queue) == 1
        assert not mc.egress_has_room(0)

    def test_draining_resumes_service(self):
        mc = self.make_controller(egress_capacity=2)
        for i in range(3):
            mc.enqueue(make_txn(address=i * 8192), 0)
        for cycle in range(300):
            mc.tick(cycle)
        popped = mc.pop_responses(0, limit=1)
        assert len(popped) == 1
        for cycle in range(300, 600):
            mc.tick(cycle)
        assert mc.pending_response_count(0) == 2  # third one completed

    def test_pop_limit_semantics(self):
        mc = self.make_controller(egress_capacity=4)
        for i in range(3):
            mc.enqueue(make_txn(address=i * 8192), 0)
        for cycle in range(400):
            mc.tick(cycle)
        assert mc.pop_responses(0, limit=0) == []
        two = mc.pop_responses(0, limit=2)
        assert len(two) == 2
        rest = mc.pop_responses(0)
        assert len(rest) == 1

    def test_per_core_isolation(self):
        """One core's clogged egress must not block another core."""
        mc = self.make_controller(egress_capacity=1)
        mc.enqueue(make_txn(core=0, address=0), 0)
        mc.enqueue(make_txn(core=0, address=8192), 0)
        mc.enqueue(make_txn(core=1, address=1 << 22), 0)
        for cycle in range(400):
            mc.tick(cycle)
        assert mc.pending_response_count(1) == 1

    def test_respc_backpressure_slows_core(self):
        """A hard response throttle propagates all the way to IPC."""
        spec = BinSpec()
        slow = BinConfiguration((0,) * 9 + (2,))

        def ipc(plan):
            builder = SystemBuilder(seed=5)
            builder.add_core(make_trace("mcf", 1500),
                             response_shaping=plan)
            return builder.build().run(
                15000, stop_when_done=False
            ).core(0).ipc

        throttled = ipc(ResponseShapingPlan(config=slow, spec=spec,
                                            generate_fake=False,
                                            enable_warning=False))
        free = ipc(None)
        assert throttled < free / 2


class TestFixedServiceDummies:
    def test_dummy_injected_on_empty_slot(self):
        dram = DramSystem(enable_refresh=False)
        sched = FixedServiceScheduler(num_cores=2, interval=40)
        mc = MemoryController(dram, scheduler=sched)
        for cycle in range(500):
            mc.tick(cycle)
        assert mc.dummy_transactions > 0
        assert sched.dummy_fill

    def test_constant_injection_rate(self):
        """FS's security property: per-core service is one per
        interval regardless of demand."""
        dram = DramSystem(enable_refresh=False)
        sched = FixedServiceScheduler(num_cores=1, interval=50)
        mc = MemoryController(dram, scheduler=sched)
        cycles = 2000
        for cycle in range(cycles):
            mc.tick(cycle)
            mc.pop_responses(0)
        # ~one dummy per slot; allow slack for DRAM command latency.
        expected = cycles // 50
        assert expected * 0.7 <= mc.dummy_transactions <= expected

    def test_no_dummy_when_disabled(self):
        dram = DramSystem(enable_refresh=False)
        sched = FixedServiceScheduler(num_cores=2, interval=40,
                                      dummy_fill=False)
        mc = MemoryController(dram, scheduler=sched)
        for cycle in range(500):
            mc.tick(cycle)
        assert mc.dummy_transactions == 0

    def test_real_requests_take_the_slot(self):
        dram = DramSystem(enable_refresh=False)
        sched = FixedServiceScheduler(num_cores=1, interval=40)
        mc = MemoryController(dram, scheduler=sched)
        mc.enqueue(make_txn(address=4096), 0)
        for cycle in range(60):
            mc.tick(cycle)
        # The real transaction was served in its slot; no dummy for it.
        assert mc.issued_reads >= 1

    def test_non_fs_scheduler_never_injects(self):
        dram = DramSystem(enable_refresh=False)
        mc = MemoryController(dram)  # FR-FCFS
        for cycle in range(500):
            mc.tick(cycle)
        assert mc.dummy_transactions == 0


class TestSetBoost:
    def test_set_replaces_rather_than_accumulates(self):
        from repro.memctrl.schedulers import PriorityFrFcfsScheduler

        sched = PriorityFrFcfsScheduler(num_cores=1)
        sched.set_boost(0, 10)
        sched.set_boost(0, 4)
        assert sched.boost_of(0) == 4

    def test_add_still_accumulates(self):
        from repro.memctrl.schedulers import PriorityFrFcfsScheduler

        sched = PriorityFrFcfsScheduler(num_cores=1)
        sched.add_boost(0, 3)
        sched.add_boost(0, 3)
        assert sched.boost_of(0) == 6

    def test_respc_warning_does_not_pile_up(self):
        """Repeated warnings keep the boost bounded by one period's
        unused credits — the anti-starvation property."""
        from repro.core.response_shaper import ResponseCamouflage
        from repro.core.shaper import BinShaper
        from repro.memctrl.schedulers import PriorityFrFcfsScheduler
        from repro.noc.link import SharedLink

        spec = BinSpec(edges=(1, 2, 4, 8), replenish_period=32)
        sched = PriorityFrFcfsScheduler(num_cores=1)
        respc = ResponseCamouflage(
            core_id=0,
            shaper=BinShaper(spec, BinConfiguration((2, 2, 2, 2))),
            link=SharedLink(num_ports=1, latency=1),
            port=0,
            scheduler=sched,
            outstanding_fn=lambda: 5,
            generate_fake=False,
        )
        for cycle in range(1, 500):
            respc.tick(cycle)
        assert respc.warnings_sent > 5
        assert sched.boost_of(0) <= 8  # one period's credit total

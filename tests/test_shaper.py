"""Unit tests for the bin-based credit shaper — the paper's core
hardware mechanism."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError, ProtocolError
from repro.core.bins import BinConfiguration, BinSpec
from repro.core.shaper import BinShaper


@pytest.fixture
def shaper(small_spec, uniform_small_config):
    return BinShaper(small_spec, uniform_small_config)


class TestConstruction:
    def test_initial_credits_match_config(self, shaper, uniform_small_config):
        assert shaper.credits_remaining() == uniform_small_config.credits

    def test_initial_unused_zero(self, shaper):
        assert shaper.unused_remaining() == (0, 0, 0, 0)

    def test_rejects_bin_count_mismatch(self, small_spec):
        with pytest.raises(ConfigurationError):
            BinShaper(small_spec, BinConfiguration((1, 1)))


class TestEligibility:
    def test_zero_delta_never_eligible(self, shaper):
        """Back-to-back (same-cycle) releases are impossible: port width 1."""
        assert not shaper.can_release_real(0)

    def test_smallest_edge_eligible_after_one_cycle(self, shaper):
        assert shaper.can_release_real(1)

    def test_consumes_largest_eligible_bin(self, shaper):
        # Delta 5 covers edges 1, 2, 4 → bin 2 (edge 4) is consumed.
        consumed = shaper.release_real(5)
        assert consumed == 2
        assert shaper.credits_remaining() == (2, 2, 1, 2)

    def test_exhausted_bins_fall_back_to_smaller(self, small_spec):
        config = BinConfiguration((1, 0, 0, 1))
        shaper = BinShaper(small_spec, config)
        assert shaper.release_real(4) == 0   # only bin 0 has credits ≤ 4
        assert shaper.release_real(12) == 3  # delta 8 ≥ edge 8

    def test_no_credits_blocks(self, small_spec):
        shaper = BinShaper(small_spec, BinConfiguration((1, 0, 0, 0)))
        shaper.release_real(1)
        assert not shaper.can_release_real(10)
        with pytest.raises(ProtocolError):
            shaper.release_real(10)

    def test_release_updates_reference(self, shaper):
        shaper.release_real(4)
        # Delta is now measured from cycle 4.
        assert not shaper.can_release_real(4)
        assert shaper.can_release_real(5)

    def test_clock_backwards_raises(self, shaper):
        shaper.release_real(8)
        with pytest.raises(ProtocolError):
            shaper.can_release_real(3)


class TestEarliestRelease:
    def test_immediate_when_eligible(self, shaper):
        assert shaper.earliest_real_release(5) == 5

    def test_future_edge_when_delta_too_small(self, small_spec):
        shaper = BinShaper(small_spec, BinConfiguration((0, 0, 0, 2)))
        # Only the edge-8 bin is credited; earliest is cycle 8.
        assert shaper.earliest_real_release(1) == 8

    def test_none_when_no_credits(self, small_spec):
        shaper = BinShaper(small_spec, BinConfiguration((1, 0, 0, 0)))
        shaper.release_real(1)
        assert shaper.earliest_real_release(2) is None


class TestReplenishment:
    def test_no_boundary_before_period(self, shaper):
        assert shaper.replenish_if_due(31) == 0

    def test_boundary_at_period(self, shaper, small_spec):
        assert shaper.replenish_if_due(small_spec.replenish_period) == 1
        assert shaper.replenishments == 1

    def test_credits_reset_not_accumulated(self, shaper, small_spec):
        shaper.release_real(1)
        shaper.replenish_if_due(small_spec.replenish_period)
        assert shaper.credits_remaining() == (2, 2, 2, 2)

    def test_unused_credits_latched(self, shaper, small_spec):
        shaper.release_real(4)  # consume bin 2
        shaper.replenish_if_due(small_spec.replenish_period)
        assert shaper.unused_remaining() == (2, 2, 1, 2)
        assert shaper.unused_total_at_last_replenish() == 7

    def test_stale_unused_discarded_next_period(self, shaper, small_spec):
        shaper.replenish_if_due(small_spec.replenish_period)
        assert shaper.unused_total_at_last_replenish() == 8
        shaper.replenish_if_due(2 * small_spec.replenish_period)
        # Nothing consumed again: unused latches the full config, not 16.
        assert shaper.unused_total_at_last_replenish() == 8

    def test_multiple_missed_boundaries(self, shaper, small_spec):
        assert shaper.replenish_if_due(5 * small_spec.replenish_period) == 5

    def test_reconfigure_applies_at_boundary(self, shaper, small_spec):
        new = BinConfiguration((9, 0, 0, 0))
        shaper.reconfigure(new)
        assert shaper.config.credits == (2, 2, 2, 2)  # not yet
        shaper.replenish_if_due(small_spec.replenish_period)
        assert shaper.config.credits == (9, 0, 0, 0)
        assert shaper.credits_remaining() == (9, 0, 0, 0)

    def test_reconfigure_rejects_wrong_bins(self, shaper):
        with pytest.raises(ConfigurationError):
            shaper.reconfigure(BinConfiguration((1,)))


class TestFakeCredits:
    def test_fake_ineligible_without_unused(self, shaper):
        assert not shaper.can_release_fake(10)

    def test_fake_eligible_after_latch(self, shaper, small_spec):
        shaper.replenish_if_due(small_spec.replenish_period)
        assert shaper.can_release_fake(small_spec.replenish_period + 1)

    def test_fake_consumes_unused_not_live(self, shaper, small_spec):
        period = small_spec.replenish_period
        shaper.replenish_if_due(period)
        shaper.release_fake(period + 1)
        assert shaper.credits_remaining() == (2, 2, 2, 2)
        assert sum(shaper.unused_remaining()) == 7

    def test_fake_without_eligibility_raises(self, shaper):
        with pytest.raises(ProtocolError):
            shaper.release_fake(10)

    def test_real_and_fake_counted_separately(self, shaper, small_spec):
        period = small_spec.replenish_period
        shaper.release_real(2)
        shaper.replenish_if_due(period)
        shaper.release_fake(period + 1)
        assert shaper.real_releases == 1
        assert shaper.fake_releases == 1


class TestStateSnapshot:
    def test_snapshot_fields(self, shaper, small_spec):
        state = shaper.state()
        assert state.credits == (2, 2, 2, 2)
        assert state.next_replenish_cycle == small_spec.replenish_period


class TestConservationProperty:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=3), min_size=4, max_size=4)
        .filter(lambda c: sum(c) > 0),
        st.integers(min_value=0, max_value=7),
    )
    def test_per_period_releases_bounded_by_credits(self, credits, seed):
        """No period ever releases more real transactions than its
        configured credit total — the bandwidth-cap invariant."""
        spec = BinSpec(edges=(1, 2, 4, 8), replenish_period=32)
        config = BinConfiguration(tuple(credits))
        shaper = BinShaper(spec, config)
        releases_this_period = 0
        period_index = 0
        for cycle in range(1, 200):
            boundaries = shaper.replenish_if_due(cycle)
            if boundaries:
                assert releases_this_period <= config.total_credits
                releases_this_period = 0
                period_index += boundaries
            # A greedy producer: release whenever allowed, with a
            # seed-dependent skip pattern.
            if (cycle + seed) % 3 != 0 and shaper.can_release_real(cycle):
                shaper.release_real(cycle)
                releases_this_period += 1

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=6))
    def test_greedy_rate_matches_constant_config(self, interval_log):
        """A single-bin config yields exactly period/edge releases."""
        interval = 2 ** interval_log  # 2..64
        spec = BinSpec(edges=(1, 2, 4, 8, 16, 32, 64), replenish_period=128)
        credits = [0] * 7
        credits[spec.bin_of(interval)] = 128 // interval
        shaper = BinShaper(spec, BinConfiguration(tuple(credits)))
        releases = 0
        for cycle in range(1, 129):
            if shaper.can_release_real(cycle):
                shaper.release_real(cycle)
                releases += 1
        assert releases == 128 // interval

"""Shared fixtures for the test suite."""

import pytest

from repro.core.bins import BinConfiguration, BinSpec
from repro.dram.organization import DramOrganization
from repro.dram.system import DramSystem
from repro.dram.timing import DramTiming


@pytest.fixture
def timing():
    """Default DDR3-1333 timing."""
    return DramTiming()


@pytest.fixture
def organization():
    """Paper Table II organization: 1 channel, 1 rank, 8 banks."""
    return DramOrganization()


@pytest.fixture
def dram(timing, organization):
    """A DRAM system with refresh disabled (deterministic tests)."""
    return DramSystem(timing=timing, organization=organization,
                      enable_refresh=False)


@pytest.fixture
def spec():
    """Default 10-bin exponential bin spec."""
    return BinSpec()


@pytest.fixture
def small_spec():
    """A short-period spec for fast shaper tests."""
    return BinSpec(edges=(1, 2, 4, 8), replenish_period=32)


@pytest.fixture
def uniform_small_config():
    """Two credits per bin over the small spec."""
    return BinConfiguration((2, 2, 2, 2))

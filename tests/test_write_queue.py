"""Tests for the optional write queue and its controller integration."""

import pytest

from repro.common.errors import ConfigurationError, ProtocolError
from repro.dram.system import DramSystem
from repro.memctrl.controller import MemoryController
from repro.memctrl.transaction import MemoryTransaction, TransactionType
from repro.memctrl.write_queue import WriteQueue, WriteQueuePolicy


def make_txn(write=True, core=0, address=0):
    return MemoryTransaction(
        core_id=core, address=address,
        kind=TransactionType.WRITE if write else TransactionType.READ,
        created_cycle=0,
    )


class TestPolicy:
    def test_defaults_valid(self):
        WriteQueuePolicy()

    def test_rejects_inverted_watermarks(self):
        with pytest.raises(ConfigurationError):
            WriteQueuePolicy(capacity=8, high_watermark=2, low_watermark=4)

    def test_rejects_high_above_capacity(self):
        with pytest.raises(ConfigurationError):
            WriteQueuePolicy(capacity=8, high_watermark=9, low_watermark=2)


class TestWriteQueueUnit:
    def test_accepts_only_writes(self):
        wq = WriteQueue()
        with pytest.raises(ProtocolError):
            wq.push(make_txn(write=False))

    def test_capacity(self):
        wq = WriteQueue(WriteQueuePolicy(capacity=2, high_watermark=2,
                                         low_watermark=0))
        wq.push(make_txn())
        wq.push(make_txn())
        assert wq.is_full
        with pytest.raises(ProtocolError):
            wq.push(make_txn())

    def test_hysteresis_enter_at_high(self):
        wq = WriteQueue(WriteQueuePolicy(capacity=8, high_watermark=3,
                                         low_watermark=1))
        wq.push(make_txn())
        wq.push(make_txn())
        assert not wq.should_drain(reads_pending=True)
        wq.push(make_txn())
        assert wq.should_drain(reads_pending=True)

    def test_hysteresis_exit_at_low(self):
        wq = WriteQueue(WriteQueuePolicy(capacity=8, high_watermark=3,
                                         low_watermark=1))
        txns = [make_txn() for _ in range(3)]
        for t in txns:
            wq.push(t)
        assert wq.should_drain(reads_pending=True)
        wq.remove(txns[0])
        assert wq.should_drain(reads_pending=True)  # still above low
        wq.remove(txns[1])
        assert not wq.should_drain(reads_pending=True)  # at low mark

    def test_drains_on_idle_reads(self):
        wq = WriteQueue(WriteQueuePolicy(capacity=8, high_watermark=6,
                                         low_watermark=1))
        wq.push(make_txn())
        assert not wq.should_drain(reads_pending=True)
        assert wq.should_drain(reads_pending=False)

    def test_remove_missing_raises(self):
        wq = WriteQueue()
        with pytest.raises(ProtocolError):
            wq.remove(make_txn())

    def test_counters(self):
        wq = WriteQueue()
        t = make_txn()
        wq.push(t)
        wq.remove(t)
        assert wq.accepted == 1 and wq.drained == 1


class TestControllerIntegration:
    def make_mc(self, **policy_kwargs):
        dram = DramSystem(enable_refresh=False)
        return MemoryController(
            dram, write_queue_policy=WriteQueuePolicy(**policy_kwargs)
        )

    def test_writes_routed_to_write_queue(self):
        mc = self.make_mc()
        mc.enqueue(make_txn(write=True), 0)
        mc.enqueue(make_txn(write=False, address=8192), 0)
        assert len(mc.write_queue) == 1
        assert len(mc.queue) == 1

    def test_reads_prioritized_until_watermark(self):
        """Writes park while reads flow; the read completes first."""
        mc = self.make_mc(capacity=16, high_watermark=12, low_watermark=4)
        write = make_txn(write=True, address=0)
        read = make_txn(write=False, address=1 << 22)
        mc.enqueue(write, 0)
        mc.enqueue(read, 0)
        for cycle in range(200):
            mc.tick(cycle)
        assert read.issue_cycle is not None
        # The read issued strictly before the (idle-drained) write.
        assert write.issue_cycle is None or read.issue_cycle < write.issue_cycle

    def test_idle_drain_completes_writes(self):
        mc = self.make_mc()
        write = make_txn(write=True, address=0)
        mc.enqueue(write, 0)
        for cycle in range(200):
            mc.tick(cycle)
        assert write.data_ready_cycle is not None
        assert mc.write_queue.drained == 1

    def test_watermark_burst_drain(self):
        """Crossing the high watermark drains writes even under reads."""
        mc = self.make_mc(capacity=8, high_watermark=3, low_watermark=1)
        writes = [make_txn(write=True, address=i * 8192) for i in range(3)]
        cycle = 0
        for w in writes:
            mc.enqueue(w, cycle)
        # Keep a read stream alive the whole time.
        for cycle in range(1, 600):
            if mc.can_accept() and cycle % 60 == 0:
                mc.enqueue(make_txn(write=False, address=(1 << 22) + cycle * 64), cycle)
            mc.tick(cycle)
        assert mc.write_queue.drained >= 2  # drained down to the low mark

    def test_backpressure_includes_write_queue(self):
        mc = self.make_mc(capacity=2, high_watermark=2, low_watermark=0)
        mc.enqueue(make_txn(write=True, address=0), 0)
        mc.enqueue(make_txn(write=True, address=64), 0)
        assert not mc.can_accept()

    def test_default_controller_has_no_write_queue(self):
        dram = DramSystem(enable_refresh=False)
        mc = MemoryController(dram)
        assert mc.write_queue is None
        mc.enqueue(make_txn(write=True), 0)
        assert len(mc.queue) == 1

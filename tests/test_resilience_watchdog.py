"""Stall watchdog: seeded livelocks are caught, dumped and typed.

The canonical wedge is a permanent request-link stall injected by the
fault harness: requests pile up in shapers and the NoC, no instruction
retires, and the watchdog must abort with a
:class:`~repro.common.errors.WatchdogError` carrying a structured
diagnostic dump — at the *same* cycle under both engines.
"""

import json

import pytest

from repro.common.errors import SimulationError, WatchdogError
from repro.core.bins import BinSpec, uniform_config
from repro.resilience import LinkStall, ResilienceConfig, Watchdog
from repro.resilience.watchdog import diagnostic_dump
from repro.sim.system import (
    RequestShapingPlan,
    ResponseShapingPlan,
    SystemBuilder,
)
from repro.workloads import make_trace

SPEC = BinSpec()


def _stalled_system(dump_path="", watchdog_cycles=2_000, trace=False):
    config = uniform_config(SPEC, 2)
    builder = SystemBuilder(seed=11)
    builder.add_core(
        make_trace("gcc", 250, seed=11),
        request_shaping=RequestShapingPlan(config),
        response_shaping=ResponseShapingPlan(config),
    )
    builder.add_core(make_trace("mcf", 250, seed=12))
    if trace:
        builder.with_observability(trace=True, monitor=True)
    builder.with_resilience(
        ResilienceConfig(
            watchdog_cycles=watchdog_cycles,
            watchdog_dump_path=dump_path,
            faults=(LinkStall(start_cycle=1_000),),
        )
    )
    return builder.build()


class TestSeededLivelock:
    def test_caught_with_structured_dump(self):
        system = _stalled_system()
        with pytest.raises(WatchdogError) as excinfo:
            system.run(60_000)
        error = excinfo.value
        assert "no forward progress" in str(error)
        dump = error.dump
        assert dump["kind"] == "watchdog_dump"
        assert dump["stalled_for"] == 2_000
        assert dump["cycle"] == system.current_cycle
        # Every station of the pipeline is covered.
        assert {c["core_id"] for c in dump["cores"]} == {0, 1}
        assert "request_shaper" in dump["cores"][0]
        assert "credits" in dump["cores"][0]["request_shaper"]
        assert dump["memctrl"]["queue_capacity"] == 32
        assert "faults" in dump  # injector stats ride along
        assert dump["faults"]["stalls"] == [
            {"start_cycle": 1_000, "duration": None}
        ]
        json.dumps(dump)  # must be JSON-serialisable for CI artifacts

    def test_dump_file_written(self, tmp_path):
        dump_path = str(tmp_path / "dumps" / "stall.json")
        system = _stalled_system(dump_path=dump_path)
        with pytest.raises(WatchdogError) as excinfo:
            system.run(60_000)
        assert excinfo.value.dump_path == dump_path
        with open(dump_path, encoding="utf-8") as fh:
            on_disk = json.load(fh)
        assert on_disk == json.loads(json.dumps(excinfo.value.dump))

    def test_backward_compatible_with_simulation_error(self):
        with pytest.raises(SimulationError):
            _stalled_system().run(60_000)

    def test_same_abort_cycle_under_both_engines(self):
        cycles = {}
        for engine in ("cycle", "next_event"):
            with pytest.raises(WatchdogError) as excinfo:
                _stalled_system().run(60_000, engine=engine)
            cycles[engine] = excinfo.value.dump["cycle"]
        assert cycles["cycle"] == cycles["next_event"]

    def test_stall_event_emitted(self):
        system = _stalled_system(trace=True)
        with pytest.raises(WatchdogError):
            system.run(60_000)
        names = [e.name for e in system.observability.tracer.events]
        assert "watchdog.stall" in names

    def test_transient_stall_recovers(self):
        """A bounded stall shorter than the budget must not trip."""
        config = uniform_config(SPEC, 2)
        builder = SystemBuilder(seed=13)
        builder.add_core(
            make_trace("gcc", 150, seed=13),
            request_shaping=RequestShapingPlan(config),
        )
        builder.with_resilience(
            ResilienceConfig(
                watchdog_cycles=5_000,
                faults=(LinkStall(start_cycle=1_000, duration=2_000),),
            )
        )
        report = builder.build().run(120_000)
        assert report.core(0).retired_instructions > 0


class TestWatchdogUnit:
    def _idle_system(self):
        builder = SystemBuilder(seed=3)
        builder.add_core(make_trace("gcc", 50, seed=3))
        return builder.build()

    def test_horizon_caps_skips_at_progress_deadline(self):
        dog = Watchdog(cycles=1_000)
        system = self._idle_system()
        dog.reset(system)
        # From cycle 0 with no progress, a skip may reach at most the
        # cycle after the stall budget expires...
        assert dog.horizon(0) == 1_001
        assert dog.horizon(900) == 1_001
        # ...and never goes backwards.
        assert dog.horizon(5_000) == 5_001

    def test_observe_rearms_on_progress(self):
        system = self._idle_system()
        dog = Watchdog(cycles=400)
        dog.reset(system)
        system.run(2_000, stop_when_done=False)  # progress happened
        assert sum(c.retired_instructions for c in system.cores) > 0
        dog.observe(system)  # re-arms instead of raising
        assert dog._last_progress_cycle == system.current_cycle

    def test_disabled_by_run_argument(self):
        """watchdog_cycles=0 disables the check entirely."""
        system = _stalled_system(watchdog_cycles=0)
        report = system.run(30_000, stop_when_done=False)
        assert report.cycles_run == 30_000

    def test_run_argument_still_works_without_resilience(self):
        """The legacy ``run(watchdog_cycles=...)`` path is unchanged."""
        builder = SystemBuilder(seed=11)
        config = uniform_config(SPEC, 1)
        # A deliberately unserviceable shape: all credits in one huge
        # gap means the queue wedges once the single bin drains.
        builder.add_core(
            make_trace("gcc", 250, seed=11),
            request_shaping=RequestShapingPlan(config),
            response_shaping=ResponseShapingPlan(config),
        )
        system = builder.build()
        report = system.run(10_000, watchdog_cycles=0)
        assert report.cycles_run <= 10_000

    def test_diagnostic_dump_on_healthy_system(self):
        system = self._idle_system()
        system.run(500, stop_when_done=False)
        dump = diagnostic_dump(system)
        assert dump["cycle"] == 500
        assert dump["stalled_for"] == 0
        assert "faults" not in dump  # no injector wired
        json.dumps(dump)

"""The live metrics endpoint and its cycle-cadence publisher.

:class:`MetricsServer` is a snapshot store with an HTTP front: every
route serves the last *published* strings under a lock, so these tests
exercise real sockets (loopback, ephemeral ports) but deterministic
content.  :class:`ServePublisher` must follow the sampler's
advance/fill discipline — one publish per crossed boundary batch, at
the current cycle — so that a served run's simulation output stays
bit-identical to an unserved one (pinned in ``test_obs_profile.py``
and the CLI serve smoke below).
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.common.errors import ConfigurationError
from repro.obs import Observability, ObservabilityConfig
from repro.obs.export import EXPOSITION_CONTENT_TYPE
from repro.obs.server import (
    DEFAULT_PUBLISH_INTERVAL,
    MetricsServer,
    ServePublisher,
)


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers, response.read()


class TestMetricsServer:
    def test_unpublished_metrics_is_empty_exposition(self):
        with MetricsServer() as server:
            status, headers, body = _get(server.url + "/metrics")
        assert status == 200
        assert body == b"# EOF\n"
        assert headers["Content-Type"] == EXPOSITION_CONTENT_TYPE

    def test_publish_then_scrape(self):
        with MetricsServer() as server:
            server.publish("# TYPE g gauge\ng 4\n# EOF\n",
                           monitor_doc={"enabled": True}, cycle=4096)
            _, _, metrics = _get(server.url + "/metrics")
            _, headers, health = _get(server.url + "/healthz")
            _, _, monitor = _get(server.url + "/monitor")
        assert metrics == b"# TYPE g gauge\ng 4\n# EOF\n"
        doc = json.loads(health)
        assert doc["status"] == "ok"
        assert doc["cycle"] == 4096
        assert doc["publishes"] == 1
        assert doc["scrapes"] == 1
        assert doc["uptime_ms"] >= 0
        assert headers["Content-Type"] == "application/json"
        assert json.loads(monitor) == {"enabled": True}

    def test_unknown_route_404(self):
        with MetricsServer() as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + "/nope")
            assert excinfo.value.code == 404

    def test_draining_status(self):
        with MetricsServer() as server:
            server.mark_draining()
            _, _, health = _get(server.url + "/healthz")
        assert json.loads(health)["status"] == "draining"

    def test_double_start_rejected(self):
        server = MetricsServer().start()
        try:
            with pytest.raises(ConfigurationError):
                server.start()
        finally:
            server.close()

    def test_close_is_idempotent(self):
        server = MetricsServer().start()
        server.close()
        server.close()


def _obs():
    return Observability(ObservabilityConfig(monitor=True, profile=True))


class _FakeServer:
    """Records publishes without sockets (cadence unit tests)."""

    def __init__(self):
        self.calls = []

    def publish(self, exposition, monitor_doc=None, cycle=-1, status="ok"):
        self.calls.append((cycle, status))


class TestServePublisher:
    def test_interval_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ServePublisher(_obs(), _FakeServer(), interval=0)

    def test_advance_publishes_on_boundary(self):
        fake = _FakeServer()
        publisher = ServePublisher(_obs(), fake, interval=100)
        for cycle in range(99):
            publisher.advance(cycle)
        assert fake.calls == []
        publisher.advance(100)
        assert fake.calls == [(100, "ok")]
        assert publisher.next_publish_cycle == 200

    def test_fill_publishes_once_per_span(self):
        fake = _FakeServer()
        publisher = ServePublisher(_obs(), fake, interval=100)
        # One skip crossing three boundaries: one publish at span end.
        publisher.fill(350)
        assert fake.calls == [(350, "ok")]
        assert publisher.next_publish_cycle == 400

    def test_default_interval(self):
        publisher = ServePublisher(_obs(), _FakeServer())
        assert publisher.interval == DEFAULT_PUBLISH_INTERVAL

    def test_publish_renders_live_registry(self):
        obs = _obs()
        obs.metrics.counter("demo.hits").inc(3)
        obs.profiler.begin_run("cycle", 0)
        obs.profiler.end_run(10)
        with MetricsServer() as server:
            publisher = ServePublisher(obs, server, interval=10)
            publisher.publish(cycle=10)
            _, _, body = _get(server.url + "/metrics")
            _, _, monitor = _get(server.url + "/monitor")
        text = body.decode("utf-8")
        assert "demo_hits_total 3" in text
        assert "obs_published_cycle 10" in text
        assert "profiler_runs_total" in text
        assert text.endswith("# EOF\n")
        assert json.loads(monitor)["enabled"] is True


class TestAttachedHub:
    def test_hub_routes_cycle_hooks_to_publisher(self):
        # Profile-only config: the profiler itself needs no cycle
        # hooks, so attaching the publisher is what flips the flag.
        obs = Observability(ObservabilityConfig(profile=True))
        fake = _FakeServer()
        assert not obs.has_cycle_hooks
        obs.attach_publisher(ServePublisher(obs, fake, interval=50))
        assert obs.has_cycle_hooks
        obs.on_cycle_end(49)
        obs.on_cycle_end(50)
        obs.on_skip(249)
        assert fake.calls == [(50, "ok"), (249, "ok")]

    def test_publisher_excluded_from_pickle(self):
        import pickle

        obs = _obs()
        obs.attach_publisher(ServePublisher(obs, _FakeServer(), interval=50))
        clone = pickle.loads(pickle.dumps(obs))
        assert clone.publisher is None
        assert clone.profiler is not None

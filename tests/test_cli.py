"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig11", "--benchmark", "doom"])

    def test_scale_parsed(self):
        args = build_parser().parse_args(["--scale", "0.5", "list"])
        assert args.scale == 0.5

    def test_covert_key_hex(self):
        args = build_parser().parse_args(["covert", "--key", "0xFF"])
        assert int(args.key, 0) == 255


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig11" in out and "covert" in out

    def test_fig11_quick(self, capsys):
        assert main(["--scale", "0.2", "fig11", "--benchmark", "gcc"]) == 0
        out = capsys.readouterr().out
        assert "TV distance" in out

    def test_fig12_single_benchmark(self, capsys):
        assert main(["--scale", "0.2", "fig12", "--benchmark", "apache"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "apache" in out

    def test_covert_quick(self, capsys):
        assert main([
            "--scale", "0.2", "covert", "--key", "0xA5", "--bits", "8",
            "--pulse", "1500", "--no-shaping",
        ]) == 0
        out = capsys.readouterr().out
        assert "bit error rate" in out

    def test_tradeoff_quick(self, capsys):
        assert main(["--scale", "0.15", "tradeoff",
                     "--benchmark", "apache"]) == 0
        out = capsys.readouterr().out
        assert "no-shaping" in out

    def test_fig13_quick(self, capsys):
        assert main(["--scale", "0.15", "fig13", "--adversary", "gcc",
                     "--victim", "astar"]) == 0
        out = capsys.readouterr().out
        assert "camouflage" in out

    def test_sweep_json_is_jobs_invariant(self, capsys, tmp_path):
        assert main(["--scale", "0.1", "sweep", "noc-latency",
                     "--benchmark", "gcc", "--jobs", "1"]) == 0
        out_1 = capsys.readouterr().out
        assert main(["--scale", "0.1", "sweep", "noc-latency",
                     "--benchmark", "gcc", "--jobs", "2"]) == 0
        out_2 = capsys.readouterr().out
        assert out_1 == out_2
        assert "mean_latency" not in out_1  # flat {latency: value} map

    def test_cache_verbs_round_trip(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(["--scale", "0.1", "sweep", "noc-latency",
                     "--benchmark", "gcc", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "ls", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "noc-latency" in out
        assert main(["cache", "prune", "--cache-dir", cache_dir,
                     "--keep", "1"]) == 0
        capsys.readouterr()
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "removed 1" in out

    def test_tradeoff_prints_digests(self, capsys, tmp_path):
        assert main(["--scale", "0.1", "tradeoff", "--benchmark", "gcc",
                     "--jobs", "2",
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "digest" in out and "no-shaping" in out

    def test_tradeoff_prints_zoo_columns(self, capsys, tmp_path):
        assert main(["--scale", "0.1", "tradeoff",
                     "--benchmark", "gcc"]) == 0
        out = capsys.readouterr().out
        assert "auc" in out and "xcorr" in out and "spectral" in out

    def test_detect_repeated_runs_byte_identical(self, capsys, tmp_path):
        # The CI detect-smoke contract: canonical JSON on stdout, the
        # same bytes (digest included) on every run and any --jobs.
        assert main(["--scale", "0.2", "detect",
                     "--benchmark", "apache", "--jobs", "1"]) == 0
        out_1 = capsys.readouterr().out
        assert main(["--scale", "0.2", "detect",
                     "--benchmark", "apache", "--jobs", "2"]) == 0
        out_2 = capsys.readouterr().out
        assert out_1 == out_2
        doc = json.loads(out_1)
        assert doc["benchmark"] == "apache"
        assert "digest" in doc
        assert [row["label"] for row in doc["rows"]][0] == "no-shaping"

    def test_detect_writes_report_file(self, capsys, tmp_path):
        out_path = tmp_path / "detect.json"
        assert main(["--scale", "0.2", "detect", "--benchmark", "apache",
                     "--out", str(out_path)]) == 0
        stdout = capsys.readouterr().out
        assert json.loads(out_path.read_text()) == json.loads(stdout)


class TestCalibrate:
    def test_single_benchmark(self, capsys):
        from repro.cli import main

        assert main(["--scale", "0.2", "calibrate",
                     "--benchmark", "gcc"]) == 0
        out = capsys.readouterr().out
        assert "gcc" in out and "row_hit_rate" in out


class TestObservability:
    def test_trace_exports_chrome_and_jsonl(self, capsys, tmp_path):
        import json

        chrome = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        assert main(["--scale", "0.2", "trace", "--out", str(chrome),
                     "--jsonl", str(jsonl)]) == 0
        out = capsys.readouterr().out
        assert "events retained" in out
        payload = json.loads(chrome.read_text())
        categories = {e["cat"] for e in payload["traceEvents"]
                      if e.get("ph") == "i"}
        assert {"shaper", "memctrl", "dram", "noc"} <= categories
        assert jsonl.read_text().count("\n") > 0

    def test_trace_category_filter(self, capsys, tmp_path):
        import json

        chrome = tmp_path / "trace.json"
        assert main(["--scale", "0.2", "trace", "--out", str(chrome),
                     "--categories", "dram"]) == 0
        payload = json.loads(chrome.read_text())
        assert {e["cat"] for e in payload["traceEvents"]
                if e.get("ph") == "i"} == {"dram"}

    def test_stats_quick(self, capsys):
        assert main(["--scale", "0.2", "stats"]) == 0
        out = capsys.readouterr().out
        assert "row hit rate" in out
        assert "memctrl.queue_depth" in out
        assert "shaping monitor" in out

    def test_stats_next_event_engine(self, capsys):
        assert main(["--scale", "0.2", "stats",
                     "--engine", "next_event"]) == 0
        out = capsys.readouterr().out
        assert "row hit rate" in out


class TestResilienceCommands:
    def _digest(self, out):
        lines = [
            line for line in out.splitlines()
            if line.startswith("report digest:")
        ]
        assert len(lines) == 1
        return lines[0]

    def test_run_resume_digest_round_trip(self, capsys, tmp_path):
        """The bit-identical-resume guarantee, from the command line."""
        ckpt = tmp_path / "ckpt"
        assert main([
            "run", "--cycles", "6000", "--checkpoint-every", "2500",
            "--checkpoint-dir", str(ckpt),
        ]) == 0
        out = capsys.readouterr().out
        assert "checkpoints: 2 taken" in out
        digest = self._digest(out)

        snap = sorted(ckpt.glob("checkpoint-*.snap"))[-1]
        assert main(["resume", str(snap), "--until", "6000"]) == 0
        out = capsys.readouterr().out
        assert "kind=system cycle=5000" in out
        assert self._digest(out) == digest

    def test_resume_requires_exactly_one_target(self, capsys, tmp_path):
        snap = str(tmp_path / "final.snap")
        assert main([
            "run", "--cycles", "1000", "--snapshot-out", snap,
        ]) == 0
        capsys.readouterr()
        assert main(["resume", snap]) == 2
        assert main(["resume", snap, "--cycles", "10", "--until", "50"]) == 2
        # --until at or before the snapshot cycle: nothing to resume.
        assert main(["resume", snap, "--until", "1000"]) == 2

    def test_run_watchdog_no_false_positive(self, capsys):
        """A healthy shaped run under a tight budget completes cleanly."""
        assert main([
            "run", "--cycles", "6000", "--watchdog", "2000",
        ]) == 0
        out = capsys.readouterr().out
        assert "stopped at cycle 6000" in out

    def test_run_abort_reports_typed_error(self, capsys, tmp_path):
        """A failing checkpoint aborts the run loudly, not silently."""
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the checkpoint dir should go")
        assert main([
            "run", "--cycles", "6000", "--checkpoint-every", "1000",
            "--checkpoint-dir", str(blocker / "ckpt"),
        ]) == 1
        out = capsys.readouterr().out
        assert "run aborted: SnapshotError" in out

    def test_faults_malformed_trace(self, capsys):
        assert main(["faults", "--scenario", "malformed-trace"]) == 0
        out = capsys.readouterr().out
        assert '"outcome": "typed_error"' in out
        assert '"error": "TraceFormatError"' in out

    def test_faults_livelock_quick(self, capsys, tmp_path):
        dump = tmp_path / "livelock.json"
        assert main([
            "faults", "--scenario", "livelock", "--cycles", "20000",
            "--dump", str(dump),
        ]) == 0
        out = capsys.readouterr().out
        assert '"error": "WatchdogError"' in out
        assert dump.exists()


class TestObservabilityCommands:
    def _digest(self, out):
        lines = [
            line for line in out.splitlines()
            if line.startswith("report digest:")
        ]
        assert len(lines) == 1
        return lines[0]

    def test_profile_columnar_rollup(self, capsys, tmp_path):
        rollup = tmp_path / "rollup.json"
        metrics = tmp_path / "metrics.txt"
        assert main([
            "--scale", "0.1", "profile", "--engine", "columnar",
            "--out", str(rollup), "--metrics-out", str(metrics),
        ]) == 0
        out = capsys.readouterr().out
        assert "per-station work:" in out
        assert "memctrl" in out
        self._digest(out)

        import json

        doc = json.loads(rollup.read_text())
        cycles = doc["cycles"]
        assert cycles["stepped"] + cycles["skipped"] == cycles["simulated"]
        assert doc["engines"] == {"columnar": 1}
        assert doc["stations"]
        assert "wall" in doc  # the artifact carries the wall total...
        text = metrics.read_text()
        assert "profiler_cycles_simulated_total" in text
        assert "wall" not in text  # ...the registry never does
        assert text.endswith("# EOF\n")

    def test_profile_digest_engine_invariant(self, capsys):
        digests = {}
        for engine in ("cycle", "next_event", "columnar"):
            assert main([
                "--scale", "0.1", "profile", "--engine", engine,
            ]) == 0
            digests[engine] = self._digest(capsys.readouterr().out)
        assert len(set(digests.values())) == 1

    def test_run_serve_digest_matches_plain_run(self, capsys):
        assert main(["--scale", "0.1", "run"]) == 0
        plain = self._digest(capsys.readouterr().out)
        assert main(["--scale", "0.1", "run", "--serve"]) == 0
        out = capsys.readouterr().out
        assert "serving metrics at http://127.0.0.1:" in out
        assert self._digest(out) == plain

    def test_serve_live_scrape(self, capsys):
        """Drive `repro serve` from a worker thread and scrape the
        endpoints while it lingers — the CI smoke job, in-process."""
        import json
        import socket
        import threading
        import time
        import urllib.request

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        rc = []
        thread = threading.Thread(target=lambda: rc.append(main([
            "--scale", "0.1", "serve", "--port", str(port),
            "--publish-interval", "1024", "--linger", "6",
        ])))
        thread.start()
        base = f"http://127.0.0.1:{port}"

        def scrape(route):
            deadline = time.monotonic() + 30
            while True:
                try:
                    with urllib.request.urlopen(
                        base + route, timeout=2
                    ) as response:
                        return response.read().decode("utf-8")
                except OSError:
                    if time.monotonic() > deadline:
                        raise
                    time.sleep(0.1)

        try:
            # The server answers "starting" between start() and the
            # first publish; wait for the run to finish so /metrics
            # holds final state.
            deadline = time.monotonic() + 60
            while True:
                health = json.loads(scrape("/healthz"))
                if health["status"] == "ok" and health["cycle"] >= 4000:
                    break
                assert time.monotonic() < deadline
                time.sleep(0.1)
            text = scrape("/metrics")
            assert "profiler_cycles_simulated_total 4000" in text
            assert "monitor_checkpoints" in text
            assert "core0_request_credits" in text
            assert text.endswith("# EOF\n")
            monitor = json.loads(scrape("/monitor"))
            assert monitor["enabled"] is True
            assert monitor["streams"]
        finally:
            thread.join(timeout=60)
        assert rc == [0]
        out = capsys.readouterr().out
        assert "stopped at cycle 4000" in out

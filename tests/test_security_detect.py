"""Tests for the detectability lab (the attacker zoo).

Covers the estimator bug fixes this lab was built to catch — the
histogram right-edge clamp and the bias-correction policy in the
windowed MI — plus the zoo itself: ROC/AUC plumbing, classifier
determinism, the correlation/spectral probes, report digests, and the
end-to-end covert-channel claim (an unshaped sender is trivially
detectable; the shaped stream carries almost none of the secret).
"""

import numpy as np
import pytest

from repro.analysis.experiments import (
    ExperimentDefaults,
    detect_suite,
    staircase_config,
)
from repro.common.rng import DeterministicRng
from repro.common.util import canonical_doc
from repro.core.bins import BinSpec
from repro.security.detect import (
    FEATURE_NAMES,
    classifier_aucs,
    detect_report,
    max_cross_correlation,
    quantize_gaps,
    roc_auc,
    sample_target_gaps,
    segment_features,
    spectral_peak_ratio,
    windowed_detect_scores,
    zoo_score,
)
from repro.security.mutual_information import windowed_counts, windowed_rate_mi
from repro.sim.system import RequestShapingPlan, SystemBuilder
from repro.workloads.covert import (
    CovertChannelConfig,
    covert_sender_trace,
    key_to_bits,
)

SPEC = BinSpec()


# ---------------------------------------------------------------------------
# satellite fixes: histogram edge handling / bias-correction policy
# ---------------------------------------------------------------------------


class TestWindowedCountsEdges:
    def test_sample_on_rightmost_edge_lands_in_last_bin(self):
        # Regression: an event exactly on start + num_windows * window
        # used to be silently dropped by the half-open convention.
        counts = windowed_counts([1000], 100, 10)
        assert counts[-1] == 1
        assert counts.sum() == 1

    def test_sample_beyond_rightmost_edge_still_dropped(self):
        counts = windowed_counts([1001], 100, 10)
        assert counts.sum() == 0

    def test_interior_events_unchanged(self):
        counts = windowed_counts([0, 99, 100, 950], 100, 10)
        assert counts[0] == 2 and counts[1] == 1 and counts[9] == 1

    def test_start_cycle_offset(self):
        counts = windowed_counts([1500], 100, 10, start_cycle=500)
        assert counts[-1] == 1

    def test_bias_correction_reduces_windowed_mi(self):
        # The sweep policy is bias_correction=True; the Miller–Madow
        # term must actually be applied in the windowed path.
        rng = DeterministicRng(3)
        times_x = np.cumsum([rng.randint(1, 64) for _ in range(256)])
        times_y = np.cumsum([rng.randint(1, 64) for _ in range(256)])
        plain = windowed_rate_mi(list(times_x), list(times_y), 128, 8192)
        corrected = windowed_rate_mi(
            list(times_x), list(times_y), 128, 8192, bias_correction=True
        )
        assert corrected < plain


# ---------------------------------------------------------------------------
# ROC / classifiers
# ---------------------------------------------------------------------------


class TestRocAuc:
    def test_perfect_separation(self):
        assert roc_auc([0.1, 0.2, 0.8, 0.9], [0, 0, 1, 1]) == pytest.approx(1.0)

    def test_inverted_separation(self):
        assert roc_auc([0.9, 0.8, 0.2, 0.1], [0, 0, 1, 1]) == pytest.approx(0.0)

    def test_all_tied_scores(self):
        assert roc_auc([0.5, 0.5, 0.5, 0.5], [0, 1, 0, 1]) == pytest.approx(0.5)

    def test_empty_class_abstains(self):
        assert roc_auc([0.1, 0.9], [1, 1]) == 0.5

    def test_partial_overlap(self):
        auc = roc_auc([0.1, 0.4, 0.35, 0.8], [0, 0, 1, 1])
        assert 0.5 < auc < 1.0


def _gaps_from_bins(bin_index, count, rng):
    """Gaps drawn inside one bin's interval (noisy single-bin stream)."""
    lo = SPEC.edges[bin_index]
    hi = SPEC.edges[bin_index + 1] - 1
    return [rng.randint(lo, hi) for _ in range(count)]


class TestClassifiers:
    def test_separable_distributions_score_high(self):
        rng = DeterministicRng(11)
        positive = segment_features(_gaps_from_bins(2, 512, rng), SPEC)
        negative = segment_features(_gaps_from_bins(6, 512, rng), SPEC)
        out = classifier_aucs(positive, negative, DeterministicRng(5))
        assert out["auc"] >= 0.95

    def test_identical_distributions_score_near_half(self):
        rng = DeterministicRng(11)
        gaps = _gaps_from_bins(4, 1024, rng)
        positive = segment_features(gaps[:512], SPEC)
        negative = segment_features(gaps[512:], SPEC)
        out = classifier_aucs(positive, negative, DeterministicRng(5))
        assert out["auc"] <= 0.75

    def test_too_few_segments_abstains(self):
        rng = DeterministicRng(11)
        tiny = segment_features(_gaps_from_bins(2, 48, rng), SPEC)
        out = classifier_aucs(tiny, tiny, DeterministicRng(5))
        assert out == {"logistic": 0.5, "stumps": 0.5, "auc": 0.5}

    def test_feature_matrix_shape(self):
        rng = DeterministicRng(11)
        features = segment_features(_gaps_from_bins(3, 160, rng), SPEC)
        assert features.shape == (10, len(FEATURE_NAMES))

    def test_same_seed_same_aucs(self):
        rng = DeterministicRng(11)
        positive = segment_features(_gaps_from_bins(2, 512, rng), SPEC)
        negative = segment_features(_gaps_from_bins(3, 512, rng), SPEC)
        first = classifier_aucs(positive, negative, DeterministicRng(9))
        second = classifier_aucs(positive, negative, DeterministicRng(9))
        assert first == second


class TestProbes:
    def test_xcorr_identical_series(self):
        series = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        assert max_cross_correlation(series, series) == pytest.approx(1.0)

    def test_xcorr_lagged_copy(self):
        series = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0, 5.0, 3.0]
        assert max_cross_correlation(
            series[2:], series[:-2]
        ) == pytest.approx(1.0)

    def test_xcorr_constant_series_is_zero(self):
        assert max_cross_correlation([5.0] * 16, [1.0, 2.0] * 8) == 0.0

    def test_xcorr_never_exceeds_one(self):
        rng = DeterministicRng(2)
        series = [rng.random() for _ in range(64)]
        assert max_cross_correlation(series, series) <= 1.0

    def test_spectral_tone_dominates(self):
        tone = [np.sin(2 * np.pi * k / 8.0) for k in range(64)]
        assert spectral_peak_ratio(tone) > 100.0

    def test_spectral_degenerate_inputs(self):
        assert spectral_peak_ratio([1.0] * 64) == 1.0
        assert spectral_peak_ratio([1.0, 2.0]) == 1.0


# ---------------------------------------------------------------------------
# reports, determinism and the GA scalarization
# ---------------------------------------------------------------------------


def _noisy_gaps(count, rng):
    return [rng.randint(1, 400) for _ in range(count)]


class TestDetectReport:
    def test_digest_stable_across_runs(self):
        rng = DeterministicRng(17)
        intrinsic = _noisy_gaps(600, rng)
        observed = _noisy_gaps(600, rng)
        target = staircase_config(SPEC, 0.027).normalized()
        first = detect_report("x", intrinsic, observed, SPEC, target, seed=5)
        second = detect_report("x", intrinsic, observed, SPEC, target, seed=5)
        assert first == second
        assert first.as_doc() == second.as_doc()

    def test_quantize_gaps_snaps_to_lower_edges(self):
        gaps = [1, 3, 7, 900]
        snapped = quantize_gaps(gaps, SPEC)
        assert snapped == [SPEC.edges[SPEC.bin_of(g)] for g in gaps]

    def test_sample_target_gaps_deterministic_and_on_edges(self):
        target = staircase_config(SPEC, 0.027).normalized()
        first = sample_target_gaps(SPEC, target, 128, DeterministicRng(3))
        second = sample_target_gaps(SPEC, target, 128, DeterministicRng(3))
        assert first == second
        assert set(first) <= set(SPEC.edges)

    def test_windowed_scores_abstain_without_target(self):
        rng = DeterministicRng(17)
        gaps = _noisy_gaps(600, rng)
        auc, xcorr = windowed_detect_scores(
            gaps, gaps, SPEC, None, DeterministicRng(1)
        )
        assert auc is None
        assert xcorr == pytest.approx(1.0)

    def test_zoo_score_default_weights_is_mi(self):
        assert zoo_score(0.25, 0.9, 0.8) == pytest.approx(0.25)

    def test_zoo_score_weights_add_leakage_terms(self):
        score = zoo_score(0.25, 0.75, 0.4, auc_weight=1.0, xcorr_weight=1.0)
        assert score == pytest.approx(0.25 + 2 * 0.25 + 0.4)
        # An indistinguishable stream adds nothing regardless of weight.
        assert zoo_score(0.0, 0.5, 0.0, auc_weight=5.0) == 0.0


# ---------------------------------------------------------------------------
# GA multi-objective fitness
# ---------------------------------------------------------------------------


class TestGaZooFitness:
    def _payload(self, **extra):
        import dataclasses

        from repro.parallel.tasks import make_run_payload

        fast = dataclasses.replace(
            ExperimentDefaults(), accesses=600, cycles=6000
        )
        payload = make_run_payload("gcc", fast)
        payload.update(
            base_ipc=1.0, window_cycles=512, seed=7,
            genome=[2, 1, 1, 1, 1, 1, 1, 1, 1, 1],
        )
        payload.update(extra)
        return payload

    def test_default_weights_reduce_to_mi_penalty(self):
        from repro.parallel.tasks import ga_fitness_task

        result = ga_fitness_task(self._payload())
        assert "auc" not in result and "xcorr" not in result
        assert result["fitness"] == pytest.approx(
            result["slowdown"] + result["mi"]
        )

    def test_zoo_weights_turn_fitness_multi_objective(self):
        from repro.parallel.tasks import ga_fitness_task

        payload = self._payload(auc_weight=1.0, xcorr_weight=0.5)
        result = ga_fitness_task(payload)
        assert 0.0 <= result["auc"] <= 1.0
        assert 0.0 <= result["xcorr"] <= 1.0
        expected = result["slowdown"] + zoo_score(
            result["mi"], result["auc"], result["xcorr"],
            auc_weight=1.0, xcorr_weight=0.5,
        )
        assert result["fitness"] == pytest.approx(expected)
        # Same payload, same seed → identical multi-objective score.
        assert ga_fitness_task(payload) == result


# ---------------------------------------------------------------------------
# end-to-end: the covert channel against the zoo
# ---------------------------------------------------------------------------


def _covert_run(key, plan, cycles=80000, seed=42):
    trace = covert_sender_trace(key_to_bits(key, 16), CovertChannelConfig())
    builder = SystemBuilder(seed=seed)
    builder.add_core(trace, request_shaping=plan)
    return builder.build().run(cycles, stop_when_done=False).core(0)


class TestCovertEndToEnd:
    @pytest.fixture(scope="class")
    def runs(self):
        spec = ExperimentDefaults().spec
        config = staircase_config(spec, 0.027)
        shaped_a = _covert_run(
            0xAAAA, RequestShapingPlan(config=config, spec=spec)
        )
        shaped_b = _covert_run(
            0x5555, RequestShapingPlan(config=config, spec=spec)
        )
        unshaped = _covert_run(0xAAAA, None)
        return spec, config, shaped_a, shaped_b, unshaped

    def test_unshaped_sender_is_trivially_detectable(self, runs):
        spec, config, _, _, unshaped = runs
        report = detect_report(
            "unshaped", unshaped.request_intrinsic.gaps,
            unshaped.request_intrinsic.gaps, spec,
            config.normalized(), seed=42,
        )
        assert report.auc >= 0.9
        assert report.xcorr >= 0.9

    def test_shaped_stream_hides_the_secret(self, runs):
        # The two-world attacker: distinguish key 0xAAAA's shaped
        # stream from key 0x5555's.  Shaping pushes the classifiers
        # toward coin-flipping and collapses the rate correlation.
        spec, config, shaped_a, shaped_b, unshaped = runs
        secret = detect_report(
            "secret", shaped_a.request_intrinsic.gaps,
            shaped_a.request_shaped.gaps, spec, config.normalized(),
            seed=42, reference_gaps=shaped_b.request_shaped.gaps,
        )
        assert secret.auc <= 0.7
        assert secret.xcorr <= 0.4
        # And the classic MI view agrees: shaping strips most of the
        # rate information the unshaped stream exposes.
        baseline = detect_report(
            "unshaped", unshaped.request_intrinsic.gaps,
            unshaped.request_intrinsic.gaps, spec,
            config.normalized(), seed=42,
        )
        assert secret.mi_bits < 0.5 * baseline.mi_bits


# ---------------------------------------------------------------------------
# the canned suite: determinism across jobs and runs
# ---------------------------------------------------------------------------


class TestDetectSuite:
    def test_jobs_invariant_and_digest_stable(self):
        defaults = ExperimentDefaults().scaled(0.2)
        serial = detect_suite("apache", defaults, jobs=1)
        parallel = detect_suite("apache", defaults, jobs=2)
        assert canonical_doc(serial) == canonical_doc(parallel)
        assert serial["digest"] == parallel["digest"]
        labels = [row["label"] for row in serial["rows"]]
        assert labels[0] == "no-shaping"
        assert "cs" in labels
        for row in serial["rows"]:
            for column in ("mi", "auc", "xcorr", "spectral"):
                assert column in row

"""System-level property tests (hypothesis).

These drive the *whole* pipeline — cores, caches, shapers, NoC,
controller, DRAM — under randomly drawn shaping configurations and
check global invariants that no unit test can cover:

* conservation: every demand miss is answered exactly once, no
  transaction is invented or lost;
* the shaping cap: a core's real bus traffic never exceeds its credit
  budget per replenishment period (plus one period of slack for
  boundary effects);
* monotone clock: timestamp trails are causally ordered.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.bins import BinConfiguration, BinSpec
from repro.sim.system import (
    RequestShapingPlan,
    ResponseShapingPlan,
    SystemBuilder,
)
from repro.workloads.spec import make_trace

CONFIG_STRATEGY = st.lists(
    st.integers(min_value=0, max_value=12), min_size=10, max_size=10
).filter(lambda credits: sum(credits) > 0)


def build_system(credits, seed, response_too=False):
    spec = BinSpec()
    config = BinConfiguration(tuple(credits))
    builder = SystemBuilder(seed=seed)
    builder.add_core(
        make_trace("gcc", 600, seed=seed),
        request_shaping=RequestShapingPlan(config=config, spec=spec),
        response_shaping=(
            ResponseShapingPlan(config=config, spec=spec)
            if response_too
            else None
        ),
    )
    builder.add_core(
        make_trace("astar", 600, seed=seed + 1, base_address=1 << 33)
    )
    return builder.build()


class TestConservation:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(credits=CONFIG_STRATEGY, seed=st.integers(0, 50))
    def test_no_transaction_lost_or_invented(self, credits, seed):
        system = build_system(credits, seed)
        system.run(12000, stop_when_done=False)
        for core in system.cores:
            # Demand requests still unanswered must be accounted for by
            # in-flight state somewhere in the pipeline.
            delivered = system.delivered_count(core.core_id)
            outstanding = core.outstanding_misses
            assert delivered + outstanding == core.demand_requests

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(credits=CONFIG_STRATEGY, seed=st.integers(0, 50))
    def test_timestamp_causality(self, credits, seed):
        system = build_system(credits, seed)
        system.run(10000, stop_when_done=False)
        for _, _, txn in system.request_link.grant_trace:
            if txn.is_fake:
                continue
            assert txn.shaper_release_cycle >= txn.created_cycle
            if txn.mc_arrival_cycle is not None:
                assert txn.mc_arrival_cycle >= txn.shaper_release_cycle
            if txn.issue_cycle is not None:
                assert txn.issue_cycle >= txn.mc_arrival_cycle
            if txn.data_ready_cycle is not None:
                assert txn.data_ready_cycle > txn.issue_cycle
            if txn.delivered_cycle is not None:
                assert txn.delivered_cycle >= txn.data_ready_cycle


class TestShapingCap:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(credits=CONFIG_STRATEGY, seed=st.integers(0, 50))
    def test_bus_traffic_bounded_by_budget(self, credits, seed):
        """Real + fake releases never exceed credits-per-period times
        the number of periods (one period of slack for the tail)."""
        spec = BinSpec()
        cycles = 12000
        system = build_system(credits, seed)
        system.run(cycles, stop_when_done=False)
        path = system.request_paths[0]
        periods = cycles / spec.replenish_period + 1
        # Real consumes live credits; fakes consume the *latched*
        # leftovers of the previous period — together they can spend at
        # most two period-budgets per period in the worst case, but
        # never more than the total ever granted.
        granted = sum(credits) * periods * 2
        assert path.real_sent + path.fake_sent <= granted

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(credits=CONFIG_STRATEGY, seed=st.integers(0, 20))
    def test_response_path_conserves_real_responses(self, credits, seed):
        system = build_system(credits, seed, response_too=True)
        system.run(12000, stop_when_done=False)
        path = system.response_paths[0]
        # Everything the shaper released as real actually left the MC.
        assert path.real_sent <= path.intrinsic_histogram.total + 1

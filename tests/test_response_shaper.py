"""Unit tests for Response Camouflage (RespC)."""

import pytest

from repro.core.bins import BinConfiguration, BinSpec
from repro.core.response_shaper import (
    PassthroughResponsePath,
    ResponseCamouflage,
)
from repro.core.shaper import BinShaper
from repro.memctrl.schedulers import PriorityFrFcfsScheduler
from repro.memctrl.transaction import MemoryTransaction, TransactionType
from repro.noc.link import SharedLink


def make_respc(
    config=None,
    scheduler=None,
    outstanding=0,
    generate_fake=True,
):
    spec = BinSpec(edges=(1, 2, 4, 8), replenish_period=32)
    config = config or BinConfiguration((2, 2, 2, 2))
    link = SharedLink(num_ports=1, latency=1, port_capacity=4)
    respc = ResponseCamouflage(
        core_id=0,
        shaper=BinShaper(spec, config),
        link=link,
        port=0,
        scheduler=scheduler,
        outstanding_fn=lambda: outstanding,
        generate_fake=generate_fake,
    )
    return respc, link


def make_response(cycle=0):
    txn = MemoryTransaction(
        core_id=0, address=0x40, kind=TransactionType.READ, created_cycle=cycle
    )
    txn.data_ready_cycle = cycle
    return txn


class TestThrottling:
    def test_release_when_credited(self):
        respc, link = make_respc()
        txn = make_response(0)
        respc.push_response(txn, 0)
        respc.tick(1)
        assert txn.response_release_cycle == 1
        assert respc.real_sent == 1

    def test_buffered_until_credit(self):
        config = BinConfiguration((0, 0, 0, 1))
        respc, link = make_respc(config=config)
        respc.push_response(make_response(0), 0)
        for cycle in range(1, 8):
            respc.tick(cycle)
        assert respc.real_sent == 0
        assert respc.occupancy == 1
        respc.tick(8)
        assert respc.real_sent == 1

    def test_queue_capacity(self):
        respc, _ = make_respc()
        for _ in range(64):
            respc.push_response(make_response(0), 0)
        assert not respc.can_accept()


class TestFakeResponses:
    def test_fake_when_idle_with_unused_credits(self):
        respc, link = make_respc()
        for cycle in range(1, 40):
            respc.tick(cycle)
        assert respc.fake_sent > 0

    def test_no_fake_while_responses_pending(self):
        """Figure 6 case 3: fakes only when the response queue is empty."""
        config = BinConfiguration((0, 0, 0, 1))  # slow: queue backs up
        respc, link = make_respc(config=config)
        for cycle in range(1, 33):
            respc.tick(cycle)  # first period all unused → latch
        respc.push_response(make_response(33), 33)
        fake_before = respc.fake_sent
        respc.tick(34)  # delta small: real cannot go, queue non-empty
        assert respc.fake_sent == fake_before

    def test_no_fake_when_disabled(self):
        respc, _ = make_respc(generate_fake=False)
        for cycle in range(1, 100):
            respc.tick(cycle)
        assert respc.fake_sent == 0


class TestWarnings:
    def test_warning_sent_when_starved_with_outstanding(self):
        sched = PriorityFrFcfsScheduler(num_cores=1)
        respc, _ = make_respc(scheduler=sched, outstanding=3)
        for cycle in range(1, 40):
            respc.tick(cycle)
        assert respc.warnings_sent >= 1
        assert sched.boost_of(0) > 0
        # Boost granted proportional to unused credits (full config = 8).
        assert respc.boost_credits_granted >= 8

    def test_no_warning_when_idle(self):
        """Unused credits with nothing outstanding = idle program →
        fake responses, not priority boosts."""
        sched = PriorityFrFcfsScheduler(num_cores=1)
        respc, _ = make_respc(scheduler=sched, outstanding=0)
        for cycle in range(1, 40):
            respc.tick(cycle)
        assert respc.warnings_sent == 0
        assert sched.boost_of(0) == 0

    def test_no_warning_without_scheduler(self):
        respc, _ = make_respc(scheduler=None, outstanding=5)
        for cycle in range(1, 40):
            respc.tick(cycle)
        assert respc.warnings_sent == 0

    def test_no_warning_when_credits_consumed(self):
        sched = PriorityFrFcfsScheduler(num_cores=1)
        respc, _ = make_respc(scheduler=sched, outstanding=5)
        # Keep the shaper fully fed so every credit is consumed.
        cycle = 0
        for cycle in range(1, 33):
            if respc.occupancy < 4:
                respc.push_response(make_response(cycle), cycle)
            respc.tick(cycle)
            while respc.link.ports[0].occupancy:
                respc.link.ports[0].pop()
        # All 8 credits consumed → unused 0 → no warning.
        assert respc.shaper.unused_total_at_last_replenish() == 0
        assert respc.warnings_sent == 0


class TestHistograms:
    def test_intrinsic_records_arrivals(self):
        respc, _ = make_respc()
        respc.push_response(make_response(0), 0)
        respc.push_response(make_response(6), 6)
        assert respc.intrinsic_histogram.gaps == (6,)

    def test_shaped_records_releases(self):
        respc, _ = make_respc()
        respc.push_response(make_response(0), 0)
        respc.push_response(make_response(1), 1)
        respc.tick(1)
        respc.tick(3)
        assert respc.shaped_histogram.gaps == (2,)


class TestPassthroughResponsePath:
    def test_forwards(self):
        link = SharedLink(num_ports=1, latency=1)
        path = PassthroughResponsePath(0, link, 0)
        txn = make_response(0)
        path.push_response(txn, 0)
        path.tick(2)
        assert txn.response_release_cycle == 2
        assert path.real_sent == 1

    def test_set_outstanding_fn(self):
        respc, _ = make_respc()
        respc.set_outstanding_fn(lambda: 42)
        assert respc._outstanding_fn() == 42

"""Unit tests for bin geometry and credit configurations."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.core.bins import (
    BinConfiguration,
    BinSpec,
    MAX_CREDITS_PER_BIN,
    constant_rate_config,
    uniform_config,
)


class TestBinSpec:
    def test_default_ten_bins(self):
        spec = BinSpec()
        assert spec.num_bins == 10
        assert spec.edges == (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)

    def test_bin_of_exact_edges(self):
        spec = BinSpec()
        for k, edge in enumerate(spec.edges):
            assert spec.bin_of(edge) == k

    def test_bin_of_interior_points(self):
        spec = BinSpec()
        assert spec.bin_of(3) == 1
        assert spec.bin_of(100) == 6
        assert spec.bin_of(511) == 8

    def test_bin_of_above_top_edge(self):
        spec = BinSpec()
        assert spec.bin_of(10_000) == 9

    def test_bin_of_below_smallest(self):
        assert BinSpec().bin_of(0) == 0

    def test_bin_of_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            BinSpec().bin_of(-1)

    def test_rejects_non_increasing_edges(self):
        with pytest.raises(ConfigurationError):
            BinSpec(edges=(1, 2, 2, 8))

    def test_rejects_zero_first_edge(self):
        with pytest.raises(ConfigurationError):
            BinSpec(edges=(0, 2))

    def test_rejects_period_below_top_edge(self):
        with pytest.raises(ConfigurationError):
            BinSpec(edges=(1, 2, 512), replenish_period=256)

    @given(st.integers(min_value=0, max_value=10**6))
    def test_bin_of_consistent_with_edges(self, delta):
        spec = BinSpec()
        k = spec.bin_of(delta)
        assert delta >= spec.edges[k] or k == 0
        if k + 1 < spec.num_bins:
            assert delta < spec.edges[k + 1]


class TestBinConfiguration:
    def test_total_and_normalized(self):
        cfg = BinConfiguration((1, 3, 0, 4))
        assert cfg.total_credits == 8
        assert cfg.normalized() == (0.125, 0.375, 0.0, 0.5)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            BinConfiguration(())

    def test_rejects_all_zero(self):
        with pytest.raises(ConfigurationError):
            BinConfiguration((0, 0, 0))

    def test_rejects_overflow_of_ten_bit_register(self):
        with pytest.raises(ConfigurationError):
            BinConfiguration((MAX_CREDITS_PER_BIN + 1,))

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            BinConfiguration((-1, 5))

    def test_with_bin(self):
        cfg = BinConfiguration((1, 2, 3))
        updated = cfg.with_bin(1, 9)
        assert updated.credits == (1, 9, 3)
        assert cfg.credits == (1, 2, 3)  # original unchanged

    def test_with_bin_rejects_bad_index(self):
        with pytest.raises(ConfigurationError):
            BinConfiguration((1, 2)).with_bin(5, 1)


class TestConstantRateConfig:
    def test_single_credited_bin(self):
        spec = BinSpec()
        cfg = constant_rate_config(spec, 128)
        assert cfg.credits[spec.bin_of(128)] == spec.replenish_period // 128
        assert sum(1 for c in cfg.credits if c > 0) == 1

    def test_budget_matches_period(self):
        spec = BinSpec()
        cfg = constant_rate_config(spec, 64)
        assert cfg.total_credits == spec.replenish_period // 64

    def test_rejects_non_edge_interval(self):
        with pytest.raises(ConfigurationError):
            constant_rate_config(BinSpec(), 100)

    def test_rejects_interval_below_smallest_edge(self):
        spec = BinSpec(edges=(4, 8), replenish_period=64)
        with pytest.raises(ConfigurationError):
            constant_rate_config(spec, 2)


class TestUniformConfig:
    def test_equal_credits(self):
        cfg = uniform_config(BinSpec(), 5)
        assert cfg.credits == (5,) * 10

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            uniform_config(BinSpec(), 0)


class TestBandwidthBound:
    def test_constant_rate_bound_is_one(self):
        """A full constant-rate config exactly saturates its budget."""
        spec = BinSpec()
        cfg = constant_rate_config(spec, 128)
        assert spec.max_bandwidth_fraction(cfg) == pytest.approx(1.0)

    def test_small_bins_need_less_time(self):
        spec = BinSpec()
        fast = BinConfiguration((16,) + (0,) * 9)
        slow = BinConfiguration((0,) * 9 + (4,))
        assert spec.max_bandwidth_fraction(fast) < spec.max_bandwidth_fraction(
            slow
        )

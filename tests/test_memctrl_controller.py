"""Unit tests for the memory controller command engine."""

import pytest

from repro.common.errors import ProtocolError
from repro.dram.system import DramSystem
from repro.memctrl.controller import MemoryController
from repro.memctrl.transaction import MemoryTransaction, TransactionType


def make_controller(enable_refresh=False, **kwargs):
    dram = DramSystem(enable_refresh=enable_refresh)
    return MemoryController(dram, **kwargs)


def make_txn(core=0, address=0, write=False):
    return MemoryTransaction(
        core_id=core,
        address=address,
        kind=TransactionType.WRITE if write else TransactionType.READ,
        created_cycle=0,
    )


def run_controller(controller, cycles, start=0):
    for cycle in range(start, start + cycles):
        controller.tick(cycle)
    return start + cycles


class TestIngress:
    def test_enqueue_decodes_and_stamps(self):
        mc = make_controller()
        txn = make_txn(address=4096)
        mc.enqueue(txn, cycle=7)
        assert txn.decoded is not None
        assert txn.mc_arrival_cycle == 7

    def test_backpressure_when_full(self):
        mc = make_controller(queue_capacity=2)
        mc.enqueue(make_txn(address=0), 0)
        mc.enqueue(make_txn(address=64), 0)
        assert not mc.can_accept()
        with pytest.raises(ProtocolError):
            mc.enqueue(make_txn(address=128), 0)

    def test_per_core_mapping_used(self, organization):
        from repro.dram.address import AddressMapping

        partitioned = AddressMapping.partitioned(organization, [3])
        mc = make_controller(per_core_mapping={1: partitioned})
        own = make_txn(core=1, address=0)
        other = make_txn(core=0, address=0)
        mc.enqueue(own, 0)
        mc.enqueue(other, 0)
        assert own.decoded.bank == 3
        assert other.decoded.bank == 0


class TestServiceLoop:
    def test_single_read_completes(self):
        mc = make_controller()
        txn = make_txn(address=4096)
        mc.enqueue(txn, 0)
        run_controller(mc, 60)
        assert txn.issue_cycle is not None
        assert txn.data_ready_cycle == txn.issue_cycle + (
            mc.dram.timing.tCAS + mc.dram.timing.tBURST
        )
        assert mc.pop_responses(0) == [txn]
        assert mc.issued_reads == 1

    def test_write_completes(self):
        mc = make_controller()
        txn = make_txn(address=4096, write=True)
        mc.enqueue(txn, 0)
        run_controller(mc, 60)
        assert mc.pop_responses(0) == [txn]
        assert mc.issued_writes == 1

    def test_row_hit_faster_than_conflict(self):
        """Service the same bank twice: hit vs conflict latency gap."""
        mc = make_controller()
        first = make_txn(address=0)
        hit = make_txn(address=64)          # same row
        mc.enqueue(first, 0)
        mc.enqueue(hit, 0)
        run_controller(mc, 80)
        assert hit.was_row_hit
        assert first.was_row_hit is False

        mc2 = make_controller()
        first2 = make_txn(address=0)
        conflict = make_txn(address=8192 * 8)  # same bank, other row
        mc2.enqueue(first2, 0)
        mc2.enqueue(conflict, 0)
        run_controller(mc2, 120)
        assert conflict.was_row_hit is False
        hit_latency = hit.data_ready_cycle - first.data_ready_cycle
        conflict_latency = conflict.data_ready_cycle - first2.data_ready_cycle
        assert conflict_latency > hit_latency

    def test_responses_grouped_per_core(self):
        mc = make_controller()
        a = make_txn(core=0, address=0)
        b = make_txn(core=1, address=1 << 22)
        mc.enqueue(a, 0)
        mc.enqueue(b, 0)
        run_controller(mc, 100)
        assert mc.pop_responses(0) == [a]
        assert mc.pop_responses(1) == [b]
        assert mc.pop_responses(0) == []

    def test_pending_response_count(self):
        mc = make_controller()
        txn = make_txn(address=0)
        mc.enqueue(txn, 0)
        run_controller(mc, 60)
        assert mc.pending_response_count(0) == 1
        mc.pop_responses(0)
        assert mc.pending_response_count(0) == 0

    def test_many_transactions_all_complete(self):
        mc = make_controller()
        txns = [make_txn(core=i % 2, address=i * 8192) for i in range(16)]
        cycle = 0
        for txn in txns:
            while not mc.can_accept():
                mc.tick(cycle)
                cycle += 1
            mc.enqueue(txn, cycle)
        run_controller(mc, 2000, start=cycle)
        done = mc.pop_responses(0) + mc.pop_responses(1)
        assert len(done) == 16
        assert all(t.data_ready_cycle is not None for t in txns)

    def test_fake_reads_serviced_like_reads(self):
        """Fake traffic exercises real DRAM banks (it must be real on
        the wire to be indistinguishable)."""
        mc = make_controller()
        fake = MemoryTransaction(
            core_id=0, address=64, kind=TransactionType.FAKE_READ,
            created_cycle=0,
        )
        mc.enqueue(fake, 0)
        run_controller(mc, 60)
        assert mc.pop_responses(0) == [fake]


class TestRefreshService:
    def test_refresh_issued_at_deadline(self):
        mc = make_controller(enable_refresh=True)
        trefi = mc.dram.timing.tREFI
        run_controller(mc, trefi + 10)
        assert mc.refreshes == 1

    def test_refresh_precharges_open_banks_first(self):
        mc = make_controller(enable_refresh=True)
        txn = make_txn(address=0)
        mc.enqueue(txn, 0)
        trefi = mc.dram.timing.tREFI
        run_controller(mc, trefi + mc.dram.timing.tRFC)
        assert mc.refreshes == 1
        # The bank used by the transaction was precharged for refresh.
        assert mc.dram.bank(txn.decoded).open_row is None

    def test_transactions_resume_after_refresh(self):
        mc = make_controller(enable_refresh=True)
        trefi = mc.dram.timing.tREFI
        cycle = run_controller(mc, trefi + 5)
        txn = make_txn(address=0)
        mc.enqueue(txn, cycle)
        run_controller(mc, mc.dram.timing.tRFC + 100, start=cycle)
        assert txn.data_ready_cycle is not None

"""Next-event timing contract of :class:`BinShaper`.

Two latent bugs broke the shaper's "earliest next event" answers and
had to be fixed before the cycle-skipping engine could trust them:

* a jitter hold armed against pre-replenish credits used to survive a
  replenishment boundary, delaying (or raising against) releases drawn
  from the freshly reloaded registers;
* :meth:`BinShaper.earliest_real_release` ignored both the strict
  exact-bin rule and an armed jitter hold, so it could name a cycle
  where :meth:`BinShaper.can_release_real` still answered ``False``.

The tests here pin the fixed semantics: the hold is cleared on every
boundary crossing, and ``earliest_real_release`` is a true lower bound
on the first releasable cycle — exact whenever jitter is off or the
hold is already armed.
"""

import copy

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.rng import DeterministicRng
from repro.core.bins import BinConfiguration, BinSpec
from repro.core.shaper import BinShaper

SPEC = BinSpec(edges=(2, 4, 8, 16), replenish_period=64)


class _FixedRng:
    """Stub jitter source with a deterministic, inspectable draw."""

    def __init__(self, value: int) -> None:
        self.value = value

    def randint(self, low: int, high: int) -> int:
        return min(max(self.value, low), high)


class TestJitterHoldClearedAtBoundary:
    def _armed_past_boundary(self):
        """A shaper whose jitter hold straddles the first boundary."""
        shaper = BinShaper(
            SPEC, BinConfiguration((1, 1, 1, 1)), jitter_rng=_FixedRng(10)
        )
        # Delta 60 makes the top bin (width 16) eligible; the draw of
        # 10 arms a hold until cycle 70, past the boundary at 64.
        assert not shaper.can_release_real(60)
        assert shaper._jitter_hold_until == 70
        return shaper

    def test_boundary_crossing_clears_hold(self):
        shaper = self._armed_past_boundary()
        assert shaper.replenish_if_due(64) == 1
        assert shaper._jitter_hold_until is None

    def test_release_rearms_from_fresh_credits(self):
        """The new period's first release draws a fresh hold instead of
        inheriting the stale one (which would expire at 70)."""
        shaper = self._armed_past_boundary()
        shaper.replenish_if_due(64)
        # First eligibility query after the boundary re-arms at 64+10.
        assert not shaper.can_release_real(64)
        assert shaper._jitter_hold_until == 74
        assert not shaper.can_release_real(70)  # stale hold would say yes
        assert shaper.can_release_real(74)
        assert shaper.release_real(74) == SPEC.num_bins - 1

    def test_multi_boundary_catchup_clears_hold(self):
        """Skipped-cycle catch-up over several periods resets the latch."""
        shaper = self._armed_past_boundary()
        assert shaper.replenish_if_due(3 * 64) == 3
        assert shaper._jitter_hold_until is None


CREDITS = st.lists(
    st.integers(min_value=0, max_value=2), min_size=4, max_size=4
).filter(lambda c: sum(c) > 0)


def _prepare(credits, strict, jitter_seed, releases):
    """Drive a shaper through ``releases`` real releases cycle by cycle
    so the property is checked from realistic mid-period states."""
    shaper = BinShaper(
        SPEC,
        BinConfiguration(tuple(credits)),
        strict=strict,
        jitter_rng=(
            DeterministicRng(jitter_seed) if jitter_seed is not None else None
        ),
    )
    cycle = 0
    done = 0
    while done < releases and cycle < 3 * SPEC.replenish_period:
        shaper.replenish_if_due(cycle)
        if shaper.can_release_real(cycle):
            shaper.release_real(cycle)
            done += 1
        cycle += 1
    shaper.replenish_if_due(cycle)
    return shaper, cycle


def _first_releasable(shaper, cycle):
    """Ground truth: scan a copy cycle by cycle, exactly as the
    per-cycle loop would, up to (not across) the next boundary."""
    probe = copy.deepcopy(shaper)
    for c in range(cycle, probe.next_replenish_cycle):
        if probe.can_release_real(c):
            return c
    return None


class TestEarliestRealReleaseProperty:
    @settings(max_examples=150, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        credits=CREDITS,
        strict=st.booleans(),
        jitter_seed=st.one_of(st.none(), st.integers(0, 200)),
        releases=st.integers(0, 4),
        offset=st.integers(0, 30),
    )
    def test_lower_bound_and_exactness(
        self, credits, strict, jitter_seed, releases, offset
    ):
        shaper, cycle = _prepare(credits, strict, jitter_seed, releases)
        cycle = min(cycle + offset, shaper.next_replenish_cycle - 1)
        shaper.replenish_if_due(cycle)

        predicted = shaper.earliest_real_release(cycle)
        truth = _first_releasable(shaper, cycle)

        if predicted is None or predicted >= shaper.next_replenish_cycle:
            # No release before the boundary; the engine waits on
            # next_replenish_cycle instead.
            assert truth is None
            return
        if jitter_seed is None or shaper._jitter_hold_until is not None:
            # Exact: no jitter, or the hold is already latched.
            assert truth == predicted
        else:
            # Unarmed jitter: ``predicted`` is the arming cycle, a hard
            # lower bound; the draw may push the release later (or past
            # the boundary entirely).
            assert truth is None or truth >= predicted
            # No eligibility — jitter aside — strictly before it.
            last = shaper._last_release
            for c in range(cycle, predicted):
                assert shaper._eligible_bin(shaper._credits, c - last) is None

    @settings(max_examples=100, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        credits=CREDITS,
        strict=st.booleans(),
        releases=st.integers(1, 6),
        offset=st.integers(0, 30),
    )
    def test_fake_release_exact(self, credits, strict, releases, offset):
        """Fake releases never jitter: the bound is always exact."""
        shaper, cycle = _prepare(credits, strict, None, releases)
        # Cross one boundary so the unused registers are populated.
        cycle = shaper.next_replenish_cycle + offset
        shaper.replenish_if_due(cycle)

        predicted = shaper.earliest_fake_release(cycle)
        probe = copy.deepcopy(shaper)
        truth = next(
            (
                c
                for c in range(cycle, probe.next_replenish_cycle)
                if probe.can_release_fake(c)
            ),
            None,
        )
        if predicted is None or predicted >= shaper.next_replenish_cycle:
            assert truth is None
        else:
            assert truth == predicted

"""Unit tests for the mutual-information estimators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.core.bins import BinSpec
from repro.security.mutual_information import (
    entropy_bits,
    interarrival_mi,
    mutual_information_bits,
    windowed_counts,
    windowed_rate_mi,
)


class TestEntropy:
    def test_constant_sequence_zero(self):
        assert entropy_bits([3] * 100) == 0.0

    def test_uniform_binary_one_bit(self):
        assert entropy_bits([0, 1] * 500) == pytest.approx(1.0)

    def test_uniform_four_symbols_two_bits(self):
        assert entropy_bits([0, 1, 2, 3] * 250) == pytest.approx(2.0)

    def test_empty_is_zero(self):
        assert entropy_bits([]) == 0.0


class TestMutualInformation:
    def test_identical_sequences_equal_entropy(self):
        x = [0, 1, 2, 3] * 100
        assert mutual_information_bits(x, x) == pytest.approx(entropy_bits(x))

    def test_independent_sequences_near_zero(self):
        rng = np.random.default_rng(1)
        x = rng.integers(0, 4, 20000)
        y = rng.integers(0, 4, 20000)
        assert mutual_information_bits(x, y) < 0.01

    def test_deterministic_function_preserves_mi(self):
        x = [0, 1, 2, 3] * 100
        y = [(v + 1) % 4 for v in x]  # bijection
        assert mutual_information_bits(x, y) == pytest.approx(entropy_bits(x))

    def test_symmetry(self):
        rng = np.random.default_rng(2)
        x = rng.integers(0, 3, 500)
        y = (x + rng.integers(0, 2, 500)) % 3
        assert mutual_information_bits(x, y) == pytest.approx(
            mutual_information_bits(y, x)
        )

    def test_rejects_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            mutual_information_bits([1, 2], [1])

    def test_empty_is_zero(self):
        assert mutual_information_bits([], []) == 0.0

    def test_bias_correction_reduces_estimate(self):
        rng = np.random.default_rng(3)
        x = rng.integers(0, 8, 200)
        y = rng.integers(0, 8, 200)
        raw = mutual_information_bits(x, y)
        corrected = mutual_information_bits(x, y, bias_correction=True)
        assert corrected <= raw

    def test_never_negative(self):
        assert mutual_information_bits([0, 0, 1], [1, 1, 0],
                                       bias_correction=True) >= 0.0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=2,
                    max_size=200))
    def test_data_processing_inequality(self, x):
        """Post-processing cannot increase MI — the paper's BDC
        argument (section IV-B3)."""
        y = [v % 3 for v in x]          # processed once
        z = [v % 2 for v in y]          # processed again
        assert (
            mutual_information_bits(x, z)
            <= mutual_information_bits(x, y) + 1e-9
        )

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=9), min_size=1,
                    max_size=200))
    def test_mi_bounded_by_self_information(self, x):
        y = list(reversed(x))
        h = entropy_bits(x)
        assert mutual_information_bits(x, y) <= h + 1e-9


class TestInterarrivalMi:
    def test_identity_equals_entropy_of_bins(self):
        gaps = [1, 5, 100, 600, 2, 2, 64]
        spec = BinSpec()
        mi = interarrival_mi(gaps, gaps, spec)
        bins = [spec.bin_of(g) for g in gaps]
        assert mi == pytest.approx(entropy_bits(bins))

    def test_truncates_to_common_length(self):
        assert interarrival_mi([1, 2, 3], [1, 2], BinSpec()) >= 0.0

    def test_empty_zero(self):
        assert interarrival_mi([], [1, 2]) == 0.0

    def test_constant_shaped_stream_zero(self):
        """A constant-rate shaped stream carries no information."""
        rng = np.random.default_rng(4)
        intrinsic = rng.integers(1, 500, 1000)
        shaped = [64] * 1000
        assert interarrival_mi(intrinsic, shaped) == 0.0


class TestWindowedCounts:
    def test_counts(self):
        counts = windowed_counts([0, 5, 10, 25], window_cycles=10,
                                 num_windows=3)
        assert list(counts) == [2, 1, 1]

    def test_out_of_range_ignored(self):
        counts = windowed_counts([100], window_cycles=10, num_windows=3)
        assert list(counts) == [0, 0, 0]

    def test_start_cycle_offset(self):
        counts = windowed_counts([100, 105], 10, 2, start_cycle=100)
        assert list(counts) == [2, 0]

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            windowed_counts([], 0, 1)
        with pytest.raises(ConfigurationError):
            windowed_counts([], 10, 0)


class TestWindowedRateMi:
    def test_identical_streams_high_mi(self):
        rng = np.random.default_rng(5)
        times = sorted(rng.integers(0, 100000, 3000).tolist())
        mi = windowed_rate_mi(times, times, 1000, 100000)
        assert mi > 0.5

    def test_constant_observed_stream_zero(self):
        rng = np.random.default_rng(6)
        # Bursty intrinsic, perfectly regular observed.
        intrinsic = sorted(rng.integers(0, 50000, 500).tolist())
        observed = list(range(0, 100000, 50))
        mi = windowed_rate_mi(intrinsic, observed, 1000, 100000)
        assert mi == pytest.approx(0.0, abs=1e-9)

    def test_empty_streams(self):
        assert windowed_rate_mi([], [], 100, 1000) == 0.0

"""Tests for the injectable backoff surface of repro.resilience.retry.

Satellite contract: ``RetryPolicy`` gained exponential backoff with an
injectable sleep/rng so tests observe the exact retry schedule without
wall-clock delays, and the defaults preserve the historical behaviour
(no sleeping at all).
"""

import pytest

from repro.common.errors import ConfigurationError, WorkerFailureError
from repro.common.rng import DeterministicRng
from repro.resilience.retry import (
    DEFAULT_RETRY_POLICY,
    RetryPolicy,
    run_attempts,
)


class TestBackoffDelay:
    def test_disabled_by_default(self):
        assert DEFAULT_RETRY_POLICY.backoff_seconds == 0.0
        assert DEFAULT_RETRY_POLICY.backoff_delay(1) == 0.0
        assert DEFAULT_RETRY_POLICY.backoff_delay(5) == 0.0

    def test_exponential_growth(self):
        policy = RetryPolicy(
            max_attempts=4, backoff_seconds=0.125, backoff_factor=2.0
        )
        assert policy.backoff_delay(1) == 0.125
        assert policy.backoff_delay(2) == 0.25
        assert policy.backoff_delay(3) == 0.5

    def test_cap_applies(self):
        policy = RetryPolicy(
            max_attempts=8,
            backoff_seconds=0.125,
            backoff_factor=2.0,
            backoff_max_seconds=0.3,
        )
        assert policy.backoff_delay(1) == 0.125
        assert policy.backoff_delay(2) == 0.25
        assert policy.backoff_delay(3) == 0.3
        assert policy.backoff_delay(7) == 0.3

    def test_jitter_without_rng_is_midpoint(self):
        policy = RetryPolicy(
            max_attempts=2, backoff_seconds=1.0, jitter_fraction=0.5
        )
        # midpoint of U[0, 0.5) is 0.25 -> delay * 1.25
        assert policy.backoff_delay(1) == 1.25

    def test_jitter_with_rng_is_replayable(self):
        policy = RetryPolicy(
            max_attempts=2, backoff_seconds=1.0, jitter_fraction=0.5
        )
        a = policy.backoff_delay(1, rng=DeterministicRng(7))
        b = policy.backoff_delay(1, rng=DeterministicRng(7))
        assert a == b
        assert 1.0 <= a < 1.5

    def test_failed_attempts_must_be_positive(self):
        policy = RetryPolicy(max_attempts=2, backoff_seconds=0.1)
        with pytest.raises(ConfigurationError):
            policy.backoff_delay(0)


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"timeout_seconds": 0.0},
            {"backoff_seconds": -0.1},
            {"backoff_factor": 0.5},
            {"backoff_max_seconds": -1.0},
            {"jitter_fraction": 1.5},
            {"jitter_fraction": -0.1},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)


class TestRunAttemptsBackoff:
    def test_default_policy_never_sleeps(self):
        sleeps = []
        calls = []

        def attempt(number):
            calls.append(number)
            if number == 1:
                raise ValueError("transient")
            return "ok"

        result = run_attempts(attempt, sleep=sleeps.append)
        assert result == "ok"
        assert calls == [1, 2]
        assert sleeps == []

    def test_backoff_schedule_recorded_via_injected_sleep(self):
        policy = RetryPolicy(
            max_attempts=4, backoff_seconds=0.125, backoff_factor=2.0
        )
        sleeps = []

        def attempt(number):
            if number < 4:
                raise ValueError(f"fail {number}")
            return number

        result = run_attempts(attempt, policy, sleep=sleeps.append)
        assert result == 4
        assert sleeps == [0.125, 0.25, 0.5]

    def test_on_retry_fires_before_sleep(self):
        policy = RetryPolicy(max_attempts=2, backoff_seconds=0.125)
        order = []

        def attempt(number):
            if number == 1:
                raise ValueError("boom")
            return "ok"

        run_attempts(
            attempt,
            policy,
            on_retry=lambda number, exc: order.append(("retry", number)),
            sleep=lambda delay: order.append(("sleep", delay)),
        )
        assert order == [("retry", 2), ("sleep", 0.125)]

    def test_no_sleep_after_final_failure(self):
        policy = RetryPolicy(max_attempts=2, backoff_seconds=0.125)
        sleeps = []

        def attempt(number):
            raise ValueError("always")

        with pytest.raises(WorkerFailureError) as excinfo:
            run_attempts(attempt, policy, label="doomed", sleep=sleeps.append)
        # one retry -> exactly one backoff; the terminal failure does
        # not sleep before raising
        assert sleeps == [0.125]
        assert excinfo.value.attempts == 2
        assert "doomed" in str(excinfo.value)

    def test_jitter_rng_threaded_through(self):
        policy = RetryPolicy(
            max_attempts=2, backoff_seconds=1.0, jitter_fraction=0.5
        )
        sleeps = []

        def attempt(number):
            if number == 1:
                raise ValueError("boom")
            return "ok"

        run_attempts(
            attempt, policy, sleep=sleeps.append, rng=DeterministicRng(7)
        )
        assert sleeps == [policy.backoff_delay(1, rng=DeterministicRng(7))]

"""Unit tests for the genetic algorithm and MISE slowdown model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRng
from repro.ga.genetic import GaConfig, GeneticAlgorithm
from repro.ga.mise import MiseMeasurement, mise_slowdown


def make_ga(**overrides):
    defaults = dict(
        genome_length=6, max_gene=16, population_size=10, generations=8,
    )
    defaults.update(overrides)
    return GeneticAlgorithm(GaConfig(**defaults), DeterministicRng(42))


class TestGaConfig:
    def test_rejects_tiny_population(self):
        with pytest.raises(ConfigurationError):
            GaConfig(genome_length=4, max_gene=8, population_size=1)

    def test_rejects_elite_ge_population(self):
        with pytest.raises(ConfigurationError):
            GaConfig(genome_length=4, max_gene=8, population_size=4,
                     elite_count=4)

    def test_rejects_bad_rates(self):
        with pytest.raises(ConfigurationError):
            GaConfig(genome_length=4, max_gene=8, mutation_rate=1.5)


class TestOperators:
    def test_random_genome_valid(self):
        ga = make_ga()
        for _ in range(50):
            g = ga.random_genome()
            assert len(g) == 6
            assert all(0 <= v <= 16 for v in g)
            assert sum(g) > 0

    def test_mutation_stays_in_range(self):
        ga = make_ga(mutation_rate=1.0)
        genome = (0, 16, 8, 1, 5, 2)
        for _ in range(50):
            mutated = ga.mutate(genome)
            assert all(0 <= v <= 16 for v in mutated)
            assert sum(mutated) > 0

    def test_crossover_genes_from_parents(self):
        ga = make_ga(crossover_rate=1.0)
        a = (1, 1, 1, 1, 1, 1)
        b = (9, 9, 9, 9, 9, 9)
        child = ga.crossover(a, b)
        assert all(v in (1, 9) for v in child)

    def test_crossover_rate_zero_clones(self):
        ga = make_ga(crossover_rate=0.0)
        a = (1, 2, 3, 4, 5, 6)
        assert ga.crossover(a, (9,) * 6) == a

    def test_repair_fixes_all_zero(self):
        ga = make_ga()
        repaired = ga._repair((0, 0, 0, 0, 0, 0))
        assert sum(repaired) == 1


class TestEvolution:
    def test_minimizes_simple_objective(self):
        """The GA should find (near-)zero for sum-of-genes."""
        ga = make_ga(generations=15, population_size=16)
        best, fitness = ga.evolve(lambda g: float(sum(g)))
        assert fitness <= 8  # far below random expectation (~48)

    def test_finds_target_vector(self):
        target = (4, 0, 8, 2, 16, 1)
        ga = make_ga(generations=25, population_size=20)
        best, fitness = ga.evolve(
            lambda g: float(sum(abs(a - b) for a, b in zip(g, target)))
        )
        assert fitness < 10

    def test_history_length(self):
        ga = make_ga(generations=5)
        ga.evolve(lambda g: float(sum(g)))
        assert len(ga.history) == 5

    def test_history_best_is_monotone_enough(self):
        """Elitism: the best-so-far never gets lost."""
        ga = make_ga(generations=10, elite_count=2)
        ga.evolve(lambda g: float(sum(g)))
        running_best = [min(ga.history[: i + 1]) for i in range(len(ga.history))]
        assert running_best == sorted(running_best, reverse=True)

    def test_seed_population_used(self):
        seed = (0, 0, 0, 0, 0, 1)
        ga = make_ga(generations=1, elite_count=1)
        best, fitness = ga.evolve(lambda g: float(sum(g)),
                                  seed_population=[seed])
        assert fitness <= 1.0

    def test_seed_length_validated(self):
        ga = make_ga()
        with pytest.raises(ConfigurationError):
            ga.evolve(lambda g: 0.0, seed_population=[(1, 2)])

    def test_deterministic_given_seed(self):
        a = make_ga().evolve(lambda g: float(sum(g)))
        b = make_ga().evolve(lambda g: float(sum(g)))
        assert a == b


class TestMise:
    def test_no_slowdown_when_rates_equal(self):
        assert mise_slowdown(0.5, 0.01, 0.01) == pytest.approx(1.0)

    def test_compute_bound_app_immune(self):
        """alpha=0: memory cannot slow the program down."""
        assert mise_slowdown(0.0, 0.01, 0.001) == pytest.approx(1.0)

    def test_memory_bound_app_scales_with_rates(self):
        assert mise_slowdown(1.0, 0.02, 0.01) == pytest.approx(2.0)

    def test_partial_alpha(self):
        # 50% stall fraction, rate halved → 0.5 + 0.5*2 = 1.5
        assert mise_slowdown(0.5, 0.02, 0.01) == pytest.approx(1.5)

    def test_zero_alone_rate_is_one(self):
        assert mise_slowdown(0.9, 0.0, 0.0) == 1.0

    def test_starved_app_saturates(self):
        assert mise_slowdown(0.5, 0.01, 0.0) > 1000

    def test_rejects_bad_alpha(self):
        with pytest.raises(ConfigurationError):
            mise_slowdown(1.5, 1, 1)

    def test_rejects_negative_rates(self):
        with pytest.raises(ConfigurationError):
            mise_slowdown(0.5, -1, 1)

    def test_measurement_dataclass(self):
        m = MiseMeasurement(alpha=0.5, service_rate_alone=0.02,
                            service_rate_shared=0.01)
        assert m.slowdown == pytest.approx(1.5)

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.001, max_value=1.0),
        st.floats(min_value=0.001, max_value=1.0),
    )
    def test_slowdown_at_least_compute_fraction(self, alpha, alone, shared):
        """Slowdown >= 1 whenever the shared rate <= alone rate."""
        if shared <= alone:
            assert mise_slowdown(alpha, alone, shared) >= 1.0 - 1e-9

"""Unit tests for the shared link (NoC)."""

import pytest

from repro.common.errors import ConfigurationError, ProtocolError
from repro.memctrl.transaction import MemoryTransaction, TransactionType
from repro.noc.link import SharedLink


def make_txn(core=0):
    return MemoryTransaction(
        core_id=core, address=0, kind=TransactionType.READ, created_cycle=0
    )


class TestInjection:
    def test_inject_and_arrive_after_latency(self):
        link = SharedLink(num_ports=2, latency=4)
        txn = make_txn()
        link.inject(0, txn)
        link.tick(0)
        assert link.pop_arrivals(3) == []
        assert link.pop_arrivals(4) == [txn]

    def test_port_capacity_backpressure(self):
        link = SharedLink(num_ports=1, latency=1, port_capacity=2)
        link.inject(0, make_txn())
        link.inject(0, make_txn())
        assert not link.can_inject(0)
        with pytest.raises(ProtocolError):
            link.inject(0, make_txn())

    def test_occupancy(self):
        link = SharedLink(num_ports=2, latency=1)
        link.inject(1, make_txn())
        assert link.occupancy(1) == 1
        assert link.occupancy(0) == 0

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            SharedLink(num_ports=0)
        with pytest.raises(ConfigurationError):
            SharedLink(num_ports=1, latency=0)
        with pytest.raises(ConfigurationError):
            SharedLink(num_ports=1, port_capacity=0)


class TestArbitration:
    def test_one_grant_per_cycle(self):
        link = SharedLink(num_ports=2, latency=1)
        link.inject(0, make_txn(0))
        link.inject(1, make_txn(1))
        link.tick(0)
        assert link.total_grants == 1

    def test_round_robin_fairness(self):
        """Contending ports alternate grants — the contention an
        adversary times, and the reason ReqC sits upstream."""
        link = SharedLink(num_ports=2, latency=1)
        for _ in range(4):
            link.inject(0, make_txn(0))
            link.inject(1, make_txn(1))
        order = []
        for cycle in range(8):
            link.tick(cycle)
            order.append(link.grant_trace[-1][1])
        assert order == [0, 1, 0, 1, 0, 1, 0, 1]

    def test_idle_ports_skipped(self):
        link = SharedLink(num_ports=4, latency=1)
        link.inject(2, make_txn(2))
        link.tick(0)
        assert link.grant_trace[-1][1] == 2

    def test_dest_not_ready_blocks_grant(self):
        link = SharedLink(num_ports=1, latency=1)
        link.inject(0, make_txn())
        link.tick(0, dest_ready=False)
        assert link.total_grants == 0
        link.tick(1, dest_ready=True)
        assert link.total_grants == 1

    def test_fifo_within_port(self):
        link = SharedLink(num_ports=1, latency=1)
        first, second = make_txn(), make_txn()
        link.inject(0, first)
        link.inject(0, second)
        link.tick(0)
        link.tick(1)
        arrivals = link.pop_arrivals(10)
        assert arrivals == [first, second]


class TestTrace:
    def test_grant_trace_records_cycle_and_port(self):
        link = SharedLink(num_ports=2, latency=1)
        txn = make_txn(1)
        link.inject(1, txn)
        link.tick(7)
        assert link.grant_trace == [(7, 1, txn)]

    def test_drain_trace_clears(self):
        link = SharedLink(num_ports=1, latency=1)
        link.inject(0, make_txn())
        link.tick(0)
        trace = link.drain_trace()
        assert len(trace) == 1
        assert link.grant_trace == []

    def test_in_flight_count(self):
        link = SharedLink(num_ports=1, latency=10)
        link.inject(0, make_txn())
        link.tick(0)
        assert link.in_flight_count == 1
        link.pop_arrivals(10)
        assert link.in_flight_count == 0


class TestConservation:
    def test_no_loss_no_duplication(self):
        """Everything injected arrives exactly once, in grant order."""
        link = SharedLink(num_ports=3, latency=5)
        sent = []
        arrived = []
        for cycle in range(200):
            if cycle < 60:
                port = cycle % 3
                if link.can_inject(port):
                    txn = make_txn(port)
                    link.inject(port, txn)
                    sent.append(txn)
            link.tick(cycle)
            arrived.extend(link.pop_arrivals(cycle))
        assert len(arrived) == len(sent)
        assert {t.txn_id for t in arrived} == {t.txn_id for t in sent}

"""End-to-end integration tests: the paper's qualitative claims.

Each test reproduces one evaluation-section claim at reduced scale
(the benchmark harness runs the full-size versions).  These are the
tests that tie the whole system together: cores, caches, shapers, NoC,
controller, DRAM, and the security analysis.
"""

import dataclasses

import numpy as np
import pytest

from repro.analysis.experiments import (
    ExperimentDefaults,
    _mix_names,
    covert_channel_experiment,
    derive_response_config,
    fig9_experiment,
    measure_mi_suite,
    respc_context_experiment,
    run_alone,
    run_mix,
    staircase_config,
)
from repro.core.bins import BinConfiguration, BinSpec
from repro.security.attacks import corunner_distinguishability
from repro.security.leakage import max_abs_drift
from repro.sim.system import RequestShapingPlan, ResponseShapingPlan

SMALL = dataclasses.replace(ExperimentDefaults(), accesses=2000, cycles=16000)


class TestWorkloadContrast:
    def test_mcf_more_intense_than_astar(self):
        """The evaluation's central contrast (section IV-A)."""
        mcf = run_alone("mcf", SMALL).core(0)
        astar = run_alone("astar", SMALL).core(0)
        assert mcf.demand_requests > 2 * astar.demand_requests

    def test_mcf_corunners_slow_adversary_more(self):
        """Figure 1's attack precondition: response time depends on
        the co-runner."""
        with_astar = run_mix(_mix_names("gcc", "astar"), SMALL)
        with_mcf = run_mix(_mix_names("gcc", "mcf"), SMALL)
        assert (
            with_mcf.core(0).mean_memory_latency()
            > with_astar.core(0).mean_memory_latency()
        )


class TestFigure9:
    def test_respc_flattens_response_difference(self):
        """Camouflage's curve is far flatter than FR-FCFS's (Fig 9)."""
        result = fig9_experiment("gcc", SMALL)
        unshaped_drift = max_abs_drift(result["frfcfs_difference"])
        shaped_drift = max_abs_drift(result["camouflage_difference"])
        assert shaped_drift < unshaped_drift / 2


class TestFigure10:
    def test_respc_costs_are_modest(self):
        """RespC protects at single-digit-to-moderate slowdown."""
        results = respc_context_experiment("gcc", SMALL)
        for ctx in results.values():
            assert 0.7 < ctx["adversary_slowdown"] < 2.0
            assert 0.7 < ctx["throughput_slowdown"] < 2.0


class TestSideChannelClosure:
    def test_distinguishability_collapses_under_respc(self):
        """An adversary timing its own responses can tell astar from
        mcf co-runners under FR-FCFS, but not under RespC."""
        base_a = run_mix(_mix_names("gcc", "astar"), SMALL)
        base_b = run_mix(_mix_names("gcc", "mcf"), SMALL)
        d_base = corunner_distinguishability(
            base_a.core(0).memory_latencies, base_b.core(0).memory_latencies
        )
        target = derive_response_config(
            _mix_names("gcc", "mcf"), 0, SMALL, rate_scale=0.6
        )
        plan = {0: ResponseShapingPlan(config=target, spec=SMALL.spec)}
        shaped_a = run_mix(_mix_names("gcc", "astar"), SMALL,
                           response_plans=plan, scheduler="priority")
        shaped_b = run_mix(_mix_names("gcc", "mcf"), SMALL,
                           response_plans=plan, scheduler="priority")
        d_shaped = corunner_distinguishability(
            shaped_a.core(0).memory_latencies,
            shaped_b.core(0).memory_latencies,
        )
        assert d_shaped < d_base / 2


class TestFigure11:
    @pytest.mark.parametrize("bench_name", ["gcc", "mcf", "apache"])
    def test_any_distribution_shapes_to_desired(self, bench_name):
        """Different intrinsic distributions all match DESIRED (Fig 11)."""
        desired = BinConfiguration((10, 9, 8, 7, 6, 5, 4, 3, 2, 1))
        report = run_mix(
            [bench_name], SMALL,
            request_plans={
                0: RequestShapingPlan(config=desired, spec=SMALL.spec,
                                      strict_binning=True)
            },
        )
        shaped = report.core(0).request_shaped
        assert shaped.total > 50
        assert shaped.matches_target(desired.normalized(), tolerance=0.06)


class TestMiClaims:
    def test_mi_ordering_matches_paper(self):
        """no-shaping ≫ ReqC ≥ CS, and fake traffic helps (IV-B2)."""
        defaults = dataclasses.replace(
            ExperimentDefaults(), accesses=6000, cycles=60000
        )
        mi = measure_mi_suite(defaults=defaults)
        base = mi["no_shaping"]["paired"]
        assert base > 1.0
        # Shaping with fake traffic leaks a tiny fraction of baseline.
        assert mi["cs_fake"]["paired"] < 0.05 * base
        assert mi["reqc_fake"]["paired"] < 0.10 * base
        # Fake traffic strictly improves over throttling alone.
        assert mi["cs_fake"]["windowed"] <= mi["cs_no_fake"]["windowed"] + 1e-6
        assert (
            mi["reqc_fake"]["windowed"]
            <= mi["reqc_no_fake"]["windowed"] + 1e-6
        )


class TestCovertChannel:
    def test_unshaped_key_recovered_exactly(self):
        result = covert_channel_experiment(
            0x2AAA, bits=16, shaped=False, pulse_cycles=2000, defaults=SMALL
        )
        assert result["bit_error_rate"] == 0.0

    def test_shaped_key_unrecoverable(self):
        result = covert_channel_experiment(
            0x2AAA, bits=16, shaped=True, pulse_cycles=2000, defaults=SMALL
        )
        assert result["bit_error_rate"] >= 0.3

    def test_shaped_window_counts_flat(self):
        """Figures 14/15: the camouflaged trace shows no key structure."""
        result = covert_channel_experiment(
            0x2AAA, bits=16, shaped=True, pulse_cycles=2000, defaults=SMALL
        )
        counts = result["window_counts"][1:]  # skip cold-start window
        assert counts.std() < 0.2 * counts.mean()


class TestDegenerateConstantRate:
    def test_single_bin_config_is_constant_shaper(self):
        """'Camouflage can be configured to be a constant rate shaper
        by using only one bin' — and then the observed stream is
        strictly periodic."""
        from repro.core.bins import constant_rate_config

        spec = BinSpec()
        config = constant_rate_config(spec, 64)
        report = run_mix(
            ["mcf"], SMALL,
            request_plans={0: RequestShapingPlan(config=config, spec=spec)},
        )
        gaps = np.array(report.core(0).request_shaped.gaps)
        assert gaps.size > 100
        # Steady state: the overwhelming majority of gaps equal 64.
        assert np.mean(gaps == 64) > 0.9

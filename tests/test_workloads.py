"""Unit tests for workload generation: synthetic, SPEC-like, covert."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRng
from repro.workloads.covert import (
    CovertChannelConfig,
    covert_sender_trace,
    key_to_bits,
)
from repro.workloads.spec import (
    BENCHMARK_NAMES,
    benchmark_profile,
    make_trace,
)
from repro.workloads.synthetic import SyntheticTraceGenerator, TraceParameters


class TestTraceParameters:
    def test_mpki(self):
        assert TraceParameters(gap_mean=99.0).mpki == pytest.approx(10.0)

    def test_rejects_bad_probability(self):
        with pytest.raises(ConfigurationError):
            TraceParameters(seq_prob=1.5)

    def test_rejects_tiny_working_set(self):
        with pytest.raises(ConfigurationError):
            TraceParameters(working_set_bytes=32)

    def test_rejects_off_multiplier_below_one(self):
        with pytest.raises(ConfigurationError):
            TraceParameters(off_gap_multiplier=0.5)


class TestSyntheticGenerator:
    def make(self, seed=1, **kwargs):
        return SyntheticTraceGenerator(
            TraceParameters(**kwargs), DeterministicRng(seed)
        )

    def test_deterministic(self):
        a = self.make().trace(100)
        b = self.make().trace(100)
        assert [r.address for r in a] == [r.address for r in b]
        assert [r.nonmem_insts for r in a] == [r.nonmem_insts for r in b]

    def test_seed_changes_trace(self):
        a = self.make(seed=1).trace(100)
        b = self.make(seed=2).trace(100)
        assert [r.address for r in a] != [r.address for r in b]

    def test_addresses_line_aligned_in_working_set(self):
        t = self.make(working_set_bytes=1 << 16, base_address=1 << 20).trace(
            500
        )
        for r in t:
            assert r.address % 64 == 0
            assert (1 << 20) <= r.address < (1 << 20) + (1 << 16)

    def test_gap_mean_tracks_parameter(self):
        t = self.make(gap_mean=50.0, p_enter_off=0.0).trace(5000)
        mean = sum(r.nonmem_insts for r in t) / len(t)
        assert mean == pytest.approx(50.0, rel=0.15)

    def test_sequential_locality(self):
        t = self.make(seq_prob=1.0).trace(100)
        diffs = [
            b.address - a.address for a, b in zip(t.records, t.records[1:])
        ]
        # Pure streaming: always the next line (modulo wraparound).
        assert all(d == 64 for d in diffs if d > 0)

    def test_write_fraction_tracks_parameter(self):
        t = self.make(write_fraction=0.3).trace(5000)
        assert t.write_fraction == pytest.approx(0.3, abs=0.03)

    def test_burstiness_raises_gap_variance(self):
        steady = self.make(p_enter_off=0.0).trace(3000)
        bursty = self.make(
            p_enter_off=0.1, p_exit_off=0.1, off_gap_multiplier=16.0
        ).trace(3000)

        def variance(trace):
            gaps = [r.nonmem_insts for r in trace]
            mean = sum(gaps) / len(gaps)
            return sum((g - mean) ** 2 for g in gaps) / len(gaps)

        assert variance(bursty) > variance(steady)

    def test_rejects_zero_accesses(self):
        with pytest.raises(ConfigurationError):
            self.make().trace(0)


class TestSpecProfiles:
    def test_eleven_benchmarks(self):
        assert len(BENCHMARK_NAMES) == 11

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_profile_exists(self, name):
        profile = benchmark_profile(name)
        assert profile.name == name
        assert profile.notes

    def test_aliases(self):
        assert benchmark_profile("libqt").name == "libquantum"
        assert benchmark_profile("bzip2").name == "bzip"

    def test_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            benchmark_profile("doom")

    def test_intensity_ordering(self):
        """The contrast the paper's experiments rest on."""
        mcf = benchmark_profile("mcf").params
        astar = benchmark_profile("astar").params
        sjeng = benchmark_profile("sjeng").params
        assert mcf.mpki > astar.mpki > sjeng.mpki

    def test_libquantum_streams(self):
        assert benchmark_profile("libquantum").params.seq_prob > 0.9

    def test_mcf_pointer_chases(self):
        assert benchmark_profile("mcf").params.seq_prob < 0.2

    def test_make_trace_deterministic(self):
        a = make_trace("astar", 200, seed=3)
        b = make_trace("astar", 200, seed=3)
        assert [r.address for r in a] == [r.address for r in b]

    def test_make_trace_base_address(self):
        t = make_trace("gcc", 100, base_address=1 << 33)
        assert all(r.address >= (1 << 33) for r in t)

    def test_make_trace_name(self):
        assert make_trace("apache", 10).name == "apache"


class TestKeyToBits:
    def test_known_key(self):
        assert key_to_bits(0b1010, 4) == [1, 0, 1, 0]

    def test_leading_zeros_preserved(self):
        assert key_to_bits(1, 4) == [0, 0, 0, 1]

    def test_paper_key(self):
        bits = key_to_bits(0x2AAAAAAA, 32)
        assert len(bits) == 32
        assert bits[:4] == [0, 0, 1, 0]

    def test_rejects_oversized_key(self):
        with pytest.raises(ConfigurationError):
            key_to_bits(16, 4)

    def test_rejects_zero_length(self):
        with pytest.raises(ConfigurationError):
            key_to_bits(0, 0)


class TestCovertSender:
    def test_one_bits_generate_write_bursts(self):
        config = CovertChannelConfig(pulse_cycles=1000)
        t = covert_sender_trace([1], config)
        assert len(t) == config.accesses_per_pulse
        assert all(r.is_write for r in t)

    def test_zero_bits_generate_idle(self):
        config = CovertChannelConfig(pulse_cycles=1000)
        t = covert_sender_trace([0], config)
        assert len(t) == 1
        assert t[0].nonmem_insts == config.idle_insts_per_pulse

    def test_addresses_advance_monotonically(self):
        config = CovertChannelConfig(pulse_cycles=500)
        t = covert_sender_trace([1, 1], config)
        addresses = [r.address for r in t]
        assert addresses == sorted(addresses)
        assert len(set(addresses)) == len(addresses)  # fresh lines

    def test_idle_spins_on_one_line(self):
        config = CovertChannelConfig(pulse_cycles=500)
        t = covert_sender_trace([0, 0, 0], config)
        assert len({r.address for r in t}) == 1

    def test_rejects_empty_key(self):
        with pytest.raises(ConfigurationError):
            covert_sender_trace([])

    def test_rejects_non_binary(self):
        with pytest.raises(ConfigurationError):
            covert_sender_trace([0, 2])

    def test_buffer_wraps(self):
        config = CovertChannelConfig(
            pulse_cycles=2000, buffer_bytes=1024, access_gap_insts=4
        )
        t = covert_sender_trace([1], config)
        assert all(
            r.address < config.base_address + config.buffer_bytes for r in t
        )

    @given(st.lists(st.sampled_from([0, 1]), min_size=1, max_size=8))
    @settings(max_examples=20, deadline=None)
    def test_record_count_structure(self, bits):
        config = CovertChannelConfig(pulse_cycles=400)
        t = covert_sender_trace(bits, config)
        expected = sum(
            config.accesses_per_pulse if b else 1 for b in bits
        )
        assert len(t) == expected

"""The repo must lint clean under its own policy — and stay that way.

This is the executable form of the PR's soundness argument: the
shipped checkers (determinism, integer cycle math, the next-event
contract, shared-state hazards) pass over every module in ``src/``
with only the justified baseline entries absorbing findings.  A
regression here means a new invariant violation, not a lint bug —
fix the code or add a *justified* baseline entry, in that order.
"""

import io
import pathlib

from repro.lint import lint_paths, load_baseline, load_config
from repro.lint.runner import run

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def test_src_lints_clean_with_repo_policy():
    config = load_config(str(REPO_ROOT))
    assert config.baseline_path, "repo policy should name a baseline file"
    baseline = load_baseline(str(REPO_ROOT / config.baseline_path))
    result = lint_paths([str(REPO_ROOT / "src")], config, baseline=baseline)
    assert result.findings == [], "\n".join(
        f.as_text() for f in result.findings
    )
    assert result.files_checked > 60  # the whole tree, not a subset
    assert result.exit_code == 0


def test_baseline_has_no_stale_entries():
    config = load_config(str(REPO_ROOT))
    baseline = load_baseline(str(REPO_ROOT / config.baseline_path))
    result = lint_paths([str(REPO_ROOT / "src")], config, baseline=baseline)
    stale = [e.suppression_key for e in result.unused_baseline]
    assert stale == [], f"remove stale baseline entries: {stale}"


def test_every_baseline_entry_is_justified():
    config = load_config(str(REPO_ROOT))
    baseline = load_baseline(str(REPO_ROOT / config.baseline_path))
    for entry in baseline.entries:
        assert len(entry.justification) >= 10, entry


def test_module_entry_point_is_clean_end_to_end():
    out = io.StringIO()
    code = run(paths=[str(REPO_ROOT / "src")], out=out)
    assert code == 0, out.getvalue()
    assert "0 finding(s)" in out.getvalue()

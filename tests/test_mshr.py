"""Unit tests for the MSHR file."""

import pytest

from repro.common.errors import ConfigurationError, ProtocolError
from repro.cache.mshr import MshrFile


class TestAllocation:
    def test_starts_empty(self):
        m = MshrFile(4)
        assert len(m) == 0 and not m.is_full

    def test_allocate(self):
        m = MshrFile(4)
        entry = m.allocate(0x1000, cycle=5, instruction_seq=10, is_write=False)
        assert entry.line_address == 0x1000
        assert entry.allocated_cycle == 5
        assert entry.waiting_instructions == [10]
        assert len(m) == 1

    def test_full_at_capacity(self):
        m = MshrFile(2)
        m.allocate(0, 0, 0, False)
        m.allocate(64, 0, 1, False)
        assert m.is_full

    def test_allocate_into_full_raises(self):
        m = MshrFile(1)
        m.allocate(0, 0, 0, False)
        with pytest.raises(ProtocolError):
            m.allocate(64, 0, 1, False)

    def test_double_allocate_same_line_raises(self):
        m = MshrFile(4)
        m.allocate(0, 0, 0, False)
        with pytest.raises(ProtocolError):
            m.allocate(0, 1, 1, False)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            MshrFile(0)


class TestMerging:
    def test_merge_attaches_instruction(self):
        m = MshrFile(4)
        m.allocate(0, 0, 0, False)
        m.merge(0, 7, False)
        assert m.lookup(0).waiting_instructions == [0, 7]
        assert m.merges == 1
        assert len(m) == 1  # merging does not consume an entry

    def test_merge_write_upgrades_entry(self):
        m = MshrFile(4)
        m.allocate(0, 0, 0, False)
        m.merge(0, 1, True)
        assert m.lookup(0).is_write

    def test_merge_missing_raises(self):
        m = MshrFile(4)
        with pytest.raises(ProtocolError):
            m.merge(0, 0, False)


class TestRelease:
    def test_release_returns_entry(self):
        m = MshrFile(4)
        m.allocate(0, 3, 0, False)
        entry = m.release(0)
        assert entry.allocated_cycle == 3
        assert len(m) == 0

    def test_release_frees_capacity(self):
        m = MshrFile(1)
        m.allocate(0, 0, 0, False)
        m.release(0)
        m.allocate(64, 1, 1, False)  # no longer full

    def test_release_missing_raises(self):
        m = MshrFile(4)
        with pytest.raises(ProtocolError):
            m.release(0x40)


class TestObservers:
    def test_oldest_allocation_cycle(self):
        m = MshrFile(4)
        assert m.oldest_allocation_cycle() is None
        m.allocate(0, 10, 0, False)
        m.allocate(64, 5, 1, False)
        assert m.oldest_allocation_cycle() == 5

    def test_outstanding_lines(self):
        m = MshrFile(4)
        m.allocate(0, 0, 0, False)
        m.allocate(128, 0, 1, False)
        assert sorted(m.outstanding_lines()) == [0, 128]

    def test_allocation_counter(self):
        m = MshrFile(4)
        m.allocate(0, 0, 0, False)
        m.release(0)
        m.allocate(0, 1, 1, False)
        assert m.allocations == 2

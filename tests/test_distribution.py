"""Unit tests for inter-arrival histograms."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.core.bins import BinSpec
from repro.core.distribution import InterArrivalHistogram


class TestRecording:
    def test_first_event_records_no_gap(self):
        h = InterArrivalHistogram()
        h.record(100)
        assert h.total == 0

    def test_gap_binned(self):
        h = InterArrivalHistogram()
        h.record(0)
        h.record(100)  # gap 100 → bin 6 (edge 64)
        assert h.counts[6] == 1
        assert h.gaps == (100,)

    def test_multiple_gaps(self):
        h = InterArrivalHistogram()
        h.record_all([0, 1, 3, 7, 1000])
        assert h.total == 4
        assert h.gaps == (1, 2, 4, 993)

    def test_rejects_decreasing_timestamps(self):
        h = InterArrivalHistogram()
        h.record(10)
        with pytest.raises(ConfigurationError):
            h.record(5)

    def test_zero_gap_allowed(self):
        h = InterArrivalHistogram()
        h.record(5)
        h.record(5)
        assert h.counts[0] == 1

    def test_from_timestamps(self):
        h = InterArrivalHistogram.from_timestamps([0, 64, 128])
        assert h.total == 2
        assert h.counts[6] == 2


class TestFrequencies:
    def test_empty_frequencies_are_zero(self):
        h = InterArrivalHistogram()
        assert h.frequencies() == (0.0,) * 10

    def test_frequencies_sum_to_one(self):
        h = InterArrivalHistogram.from_timestamps([0, 1, 3, 10, 100])
        assert sum(h.frequencies()) == pytest.approx(1.0)

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=2,
                    max_size=100))
    def test_total_matches_event_count(self, gaps):
        timestamps, t = [0], 0
        for g in gaps:
            t += g
            timestamps.append(t)
        h = InterArrivalHistogram.from_timestamps(timestamps)
        assert h.total == len(gaps)
        assert sum(h.counts) == len(gaps)


class TestComparison:
    def test_tv_distance_identical_is_zero(self):
        a = InterArrivalHistogram.from_timestamps([0, 1, 2, 4])
        b = InterArrivalHistogram.from_timestamps([10, 11, 12, 14])
        assert a.total_variation_distance(b) == pytest.approx(0.0)

    def test_tv_distance_disjoint_is_one(self):
        a = InterArrivalHistogram.from_timestamps([0, 1, 2])
        b = InterArrivalHistogram.from_timestamps([0, 512, 1024])
        assert a.total_variation_distance(b) == pytest.approx(1.0)

    def test_tv_distance_symmetric(self):
        a = InterArrivalHistogram.from_timestamps([0, 1, 5, 100])
        b = InterArrivalHistogram.from_timestamps([0, 3, 300, 310])
        assert a.total_variation_distance(b) == pytest.approx(
            b.total_variation_distance(a)
        )

    def test_tv_distance_rejects_mismatched_bins(self):
        a = InterArrivalHistogram(BinSpec(edges=(1, 2)))
        b = InterArrivalHistogram(BinSpec(edges=(1, 2, 4)))
        with pytest.raises(ConfigurationError):
            a.total_variation_distance(b)

    def test_matches_target(self):
        h = InterArrivalHistogram(BinSpec(edges=(1, 4)))
        h.record_all([0, 1, 2, 10])  # gaps 1,1,8 → bins 0,0,1
        assert h.matches_target([2 / 3, 1 / 3], tolerance=0.01)
        assert not h.matches_target([0.0, 1.0], tolerance=0.1)

    def test_matches_target_rejects_wrong_length(self):
        h = InterArrivalHistogram(BinSpec(edges=(1, 4)))
        with pytest.raises(ConfigurationError):
            h.matches_target([1.0])


class TestBinSequence:
    def test_sequence_matches_gaps(self):
        h = InterArrivalHistogram.from_timestamps([0, 1, 3, 67])
        assert list(h.bin_sequence()) == [0, 1, 6]

"""Unit tests for the trace format."""

import pytest

from repro.common.errors import ConfigurationError
from repro.cpu.trace import MemoryTrace, TraceRecord


class TestTraceRecord:
    def test_instruction_count(self):
        assert TraceRecord(nonmem_insts=9, address=0).instruction_count == 10

    def test_rejects_negative_gap(self):
        with pytest.raises(ConfigurationError):
            TraceRecord(nonmem_insts=-1, address=0)

    def test_rejects_negative_address(self):
        with pytest.raises(ConfigurationError):
            TraceRecord(nonmem_insts=0, address=-64)


class TestMemoryTrace:
    def make(self):
        return MemoryTrace(
            [
                TraceRecord(4, 0x100, is_write=False),
                TraceRecord(0, 0x200, is_write=True),
                TraceRecord(10, 0x300, is_write=False),
            ],
            name="t",
        )

    def test_length_and_indexing(self):
        t = self.make()
        assert len(t) == 3
        assert t[1].address == 0x200

    def test_total_instructions(self):
        assert self.make().total_instructions == 4 + 1 + 0 + 1 + 10 + 1

    def test_memory_accesses(self):
        assert self.make().memory_accesses == 3

    def test_write_fraction(self):
        assert self.make().write_fraction == pytest.approx(1 / 3)

    def test_mpki(self):
        t = self.make()
        assert t.mpki() == pytest.approx(1000 * 3 / 17)

    def test_empty_trace_metrics(self):
        t = MemoryTrace([])
        assert t.mpki() == 0.0
        assert t.write_fraction == 0.0

    def test_truncated(self):
        t = self.make().truncated(2)
        assert len(t) == 2
        assert t[0].address == 0x100

    def test_repeated(self):
        t = self.make().repeated(3)
        assert len(t) == 9
        assert t[3].address == 0x100

    def test_repeated_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            self.make().repeated(0)

    def test_iteration(self):
        addresses = [r.address for r in self.make()]
        assert addresses == [0x100, 0x200, 0x300]

"""Tests for the experiment drivers (fast, reduced-size runs)."""

import dataclasses

import pytest

from repro.analysis.experiments import (
    ExperimentDefaults,
    config_from_histogram,
    covert_channel_experiment,
    derive_request_config,
    reqc_speedup_experiment,
    run_alone,
    run_mix,
    staircase_config,
)
from repro.common.errors import ConfigurationError
from repro.core.bins import BinSpec
from repro.core.distribution import InterArrivalHistogram

FAST = dataclasses.replace(
    ExperimentDefaults(), accesses=600, cycles=6000
)


class TestDefaults:
    def test_scaled(self):
        d = ExperimentDefaults().scaled(0.5)
        assert d.accesses == 2000
        assert d.cycles == 20000

    def test_scaled_floors_at_one(self):
        d = ExperimentDefaults().scaled(1e-9)
        assert d.accesses == 1 and d.cycles == 1


class TestConfigDerivation:
    def test_config_from_histogram_total(self):
        hist = InterArrivalHistogram.from_timestamps([0, 4, 8, 12, 16])
        spec = BinSpec()
        config = config_from_histogram(hist, 16 / spec.replenish_period, spec)
        assert config.total_credits == pytest.approx(16, abs=4)

    def test_config_from_histogram_follows_shape(self):
        # All gaps equal 4 → everything lands in bin 2.
        hist = InterArrivalHistogram.from_timestamps(range(0, 100, 4))
        spec = BinSpec()
        config = config_from_histogram(hist, 0.02, spec)
        assert config.credits[2] == config.total_credits

    def test_config_from_histogram_degenerate(self):
        hist = InterArrivalHistogram()  # empty
        spec = BinSpec()
        config = config_from_histogram(hist, 1 / 64, spec)
        assert config.total_credits >= 1

    def test_rejects_negative_rate(self):
        with pytest.raises(ConfigurationError):
            config_from_histogram(InterArrivalHistogram(), -1.0, BinSpec())

    def test_staircase_total_exact(self):
        spec = BinSpec(replenish_period=512)
        config = staircase_config(spec, 40 / 512)
        assert config.total_credits == 40

    def test_staircase_decreasing(self):
        spec = BinSpec(replenish_period=512)
        config = staircase_config(spec, 110 / 512)
        credits = config.credits
        assert all(a >= b for a, b in zip(credits, credits[1:]))

    def test_staircase_small_budget_throttles(self):
        spec = BinSpec(replenish_period=512)
        tight = staircase_config(spec, 3 / 512)
        assert tight.total_credits == 3

    def test_staircase_rejects_zero_rate(self):
        with pytest.raises(ConfigurationError):
            staircase_config(BinSpec(), 0.0)

    def test_derive_request_config_valid(self):
        config = derive_request_config("gcc", FAST)
        assert config.total_credits >= 1
        assert config.num_bins == 10


class TestRunners:
    def test_run_alone_shapes(self):
        report = run_alone("sjeng", FAST)
        assert report.num_cores == 1
        assert report.core(0).trace_name == "sjeng"

    def test_run_mix_four_cores(self):
        report = run_mix(["gcc", "astar", "astar", "astar"], FAST)
        assert report.num_cores == 4
        assert all(c.retired_instructions > 0 for c in report.cores)

    def test_run_mix_deterministic(self):
        a = run_mix(["gcc", "mcf"], FAST)
        b = run_mix(["gcc", "mcf"], FAST)
        assert [c.ipc for c in a.cores] == [c.ipc for c in b.cores]


class TestExperimentShapes:
    def test_reqc_speedup_fields(self):
        result = reqc_speedup_experiment("apache", FAST)
        assert set(result) >= {"benchmark", "speedup", "cs_ipc",
                               "camouflage_ipc"}
        assert result["speedup"] > 0

    def test_covert_unshaped_recovers_key(self):
        result = covert_channel_experiment(
            0xA5, bits=8, shaped=False, pulse_cycles=1500, defaults=FAST
        )
        assert result["bit_error_rate"] == 0.0
        assert result["decoded_bits"] == result["key_bits"]

    def test_covert_shaped_hides_key(self):
        result = covert_channel_experiment(
            0x2AAA, bits=16, shaped=True, pulse_cycles=2000, defaults=FAST
        )
        assert result["bit_error_rate"] >= 0.3  # ~chance (0.5) is ideal

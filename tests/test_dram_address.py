"""Unit tests for DRAM organization and address decoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.dram.address import AddressMapping, DecodedAddress, InterleavingScheme
from repro.dram.organization import DramOrganization


class TestOrganization:
    def test_defaults_match_paper(self):
        org = DramOrganization()
        assert org.channels == 1
        assert org.ranks_per_channel == 1
        assert org.banks_per_rank == 8
        assert org.row_buffer_bytes == 8192

    def test_columns_per_row(self):
        org = DramOrganization()
        assert org.columns_per_row == 8192 // 64 == 128

    def test_total_banks(self):
        org = DramOrganization(channels=2, ranks_per_channel=2, banks_per_rank=8)
        assert org.total_banks == 32

    def test_capacity(self):
        org = DramOrganization()
        assert org.capacity_bytes == 8 * 16384 * 8192

    def test_bit_widths(self):
        org = DramOrganization()
        assert org.offset_bits == 6
        assert org.column_bits == 7
        assert org.bank_bits == 3
        assert org.rank_bits == 0
        assert org.channel_bits == 0
        assert org.row_bits == 14

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            DramOrganization(banks_per_rank=6)

    def test_rejects_access_larger_than_row(self):
        with pytest.raises(ConfigurationError):
            DramOrganization(row_buffer_bytes=64, access_bytes=128)


class TestDecoding:
    def test_zero_address(self, organization):
        mapping = AddressMapping(organization)
        d = mapping.decode(0)
        assert d == DecodedAddress(channel=0, rank=0, bank=0, row=0, column=0)

    def test_sequential_lines_walk_columns(self, organization):
        """Default mapping: consecutive lines share a row (locality)."""
        mapping = AddressMapping(organization)
        a = mapping.decode(0)
        b = mapping.decode(64)
        assert a.same_row(b)
        assert b.column == a.column + 1

    def test_row_crossing_changes_bank(self, organization):
        """After exhausting a row's columns, the bank advances."""
        mapping = AddressMapping(organization)
        a = mapping.decode(0)
        b = mapping.decode(organization.row_buffer_bytes)
        assert not a.same_row(b)
        assert b.bank == a.bank + 1

    def test_bank_interleaved_strides_banks(self, organization):
        mapping = AddressMapping.bank_interleaved(organization)
        a = mapping.decode(0)
        b = mapping.decode(64)
        assert b.bank == a.bank + 1
        assert a.row == b.row

    def test_high_bits_wrap(self, organization):
        """Addresses beyond capacity alias rather than fail."""
        mapping = AddressMapping(organization)
        d = mapping.decode(organization.capacity_bytes)
        assert d == mapping.decode(0)

    def test_rejects_negative_address(self, organization):
        with pytest.raises(ConfigurationError):
            AddressMapping(organization).decode(-1)

    @given(st.integers(min_value=0, max_value=(1 << 40) - 1))
    def test_decode_always_in_range(self, address):
        org = DramOrganization()
        d = AddressMapping(org).decode(address)
        assert 0 <= d.channel < org.channels
        assert 0 <= d.rank < org.ranks_per_channel
        assert 0 <= d.bank < org.banks_per_rank
        assert 0 <= d.row < org.rows_per_bank
        assert 0 <= d.column < org.columns_per_row

    @given(st.integers(min_value=0, max_value=(1 << 34) - 1))
    def test_same_line_same_coordinates(self, address):
        """All bytes of a cache line decode identically."""
        org = DramOrganization()
        mapping = AddressMapping(org)
        base = address & ~63
        assert mapping.decode(base) == mapping.decode(base + 63)


class TestPartitionedMapping:
    def test_confines_to_bank_subset(self, organization):
        mapping = AddressMapping.partitioned(organization, [2, 3])
        for address in range(0, 1 << 22, 4096 + 64):
            assert mapping.decode(address).bank in (2, 3)

    def test_single_bank(self, organization):
        mapping = AddressMapping.partitioned(organization, [5])
        for address in (0, 64, 8192, 1 << 20):
            assert mapping.decode(address).bank == 5

    def test_rejects_empty_mask(self, organization):
        with pytest.raises(ConfigurationError):
            AddressMapping.partitioned(organization, [])

    def test_rejects_out_of_range_bank(self, organization):
        with pytest.raises(ConfigurationError):
            AddressMapping.partitioned(organization, [8])

    def test_disjoint_partitions_never_collide(self, organization):
        """FS property: two threads on disjoint banks never share one."""
        m0 = AddressMapping.partitioned(organization, [0, 1, 2, 3])
        m1 = AddressMapping.partitioned(organization, [4, 5, 6, 7])
        banks0 = {m0.decode(a).bank for a in range(0, 1 << 20, 64 * 7)}
        banks1 = {m1.decode(a).bank for a in range(0, 1 << 20, 64 * 7)}
        assert banks0.isdisjoint(banks1)


class TestSameRow:
    def test_same_row_true(self):
        a = DecodedAddress(0, 0, 1, 10, 5)
        b = DecodedAddress(0, 0, 1, 10, 99)
        assert a.same_row(b)

    @pytest.mark.parametrize(
        "other",
        [
            DecodedAddress(1, 0, 1, 10, 5),
            DecodedAddress(0, 1, 1, 10, 5),
            DecodedAddress(0, 0, 2, 10, 5),
            DecodedAddress(0, 0, 1, 11, 5),
        ],
    )
    def test_same_row_false(self, other):
        a = DecodedAddress(0, 0, 1, 10, 5)
        assert not a.same_row(other)


class TestRankPartitioning:
    def test_confines_to_rank_subset(self):
        from repro.dram.organization import DramOrganization

        org = DramOrganization(ranks_per_channel=4)
        mapping = AddressMapping.partitioned_ranks(org, [1, 3])
        for address in range(0, 1 << 24, 8192 * 9 + 64):
            assert mapping.decode(address).rank in (1, 3)

    def test_single_rank(self):
        from repro.dram.organization import DramOrganization

        org = DramOrganization(ranks_per_channel=2)
        mapping = AddressMapping.partitioned_ranks(org, [1])
        for address in (0, 64, 1 << 20, 1 << 23):
            assert mapping.decode(address).rank == 1

    def test_rejects_out_of_range_rank(self):
        from repro.dram.organization import DramOrganization

        org = DramOrganization(ranks_per_channel=2)
        with pytest.raises(ConfigurationError):
            AddressMapping.partitioned_ranks(org, [2])

    def test_rejects_empty_rank_mask(self):
        from repro.dram.organization import DramOrganization

        org = DramOrganization(ranks_per_channel=2)
        with pytest.raises(ConfigurationError):
            AddressMapping.partitioned_ranks(org, [])

    def test_disjoint_rank_partitions(self):
        from repro.dram.organization import DramOrganization

        org = DramOrganization(ranks_per_channel=4)
        m0 = AddressMapping.partitioned_ranks(org, [0, 1])
        m1 = AddressMapping.partitioned_ranks(org, [2, 3])
        r0 = {m0.decode(a).rank for a in range(0, 1 << 24, 64 * 1021)}
        r1 = {m1.decode(a).rank for a in range(0, 1 << 24, 64 * 1021)}
        assert r0.isdisjoint(r1)

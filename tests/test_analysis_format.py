"""Unit tests for result formatting helpers."""

from repro.analysis.format import ascii_series, format_distribution, format_table


class TestFormatTable:
    def test_headers_and_rows(self):
        out = format_table(["name", "value"], [["a", 1.23456], ["bb", 2]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "1.235" in out
        assert len(lines) == 4  # header, rule, 2 rows

    def test_alignment(self):
        out = format_table(["x"], [["short"], ["a-much-longer-cell"]])
        lines = out.splitlines()
        assert len(lines[1]) >= len("a-much-longer-cell")

    def test_precision(self):
        out = format_table(["v"], [[3.14159]], precision=1)
        assert "3.1" in out and "3.14" not in out

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert len(out.splitlines()) == 2


class TestAsciiSeries:
    def test_empty(self):
        assert ascii_series([]) == "(empty)"

    def test_constant_series(self):
        out = ascii_series([5, 5, 5])
        assert len(out) == 3
        assert len(set(out)) == 1

    def test_ramp_is_monotone(self):
        out = ascii_series(list(range(9)))
        assert list(out) == sorted(out)

    def test_downsamples_to_width(self):
        out = ascii_series(list(range(1000)), width=40)
        assert len(out) == 40

    def test_short_series_not_padded(self):
        assert len(ascii_series([1, 2], width=64)) == 2


class TestFormatDistribution:
    def test_includes_counts_and_label(self):
        out = format_distribution([3, 1, 0], label="astar")
        assert "astar" in out
        assert "3" in out and "1" in out

    def test_handles_all_zero(self):
        out = format_distribution([0, 0, 0])
        assert "[" in out

"""Tests for the matched-filter covert decoder (the stronger attacker)."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.security.attacks import (
    bit_error_rate,
    decode_covert_key,
    decode_covert_key_matched,
)


def on_off_events(bits, pulse, rate_on=5, offset=0):
    events = []
    for i, b in enumerate(bits):
        if b:
            start = offset + i * pulse
            events.extend(range(start, start + pulse, rate_on))
    return events


class TestMatchedDecoder:
    def test_aligned_signal_recovered(self):
        bits = [1, 0, 1, 1, 0, 0, 1, 0]
        events = on_off_events(bits, 200)
        assert decode_covert_key_matched(events, 200, len(bits)) == bits

    def test_phase_shifted_signal_recovered(self):
        """The naive decoder degrades under a half-pulse offset; the
        matched decoder re-synchronizes."""
        bits = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 0, 1]
        pulse = 200
        events = on_off_events(bits, pulse, offset=pulse // 2)
        naive = decode_covert_key(events, pulse, len(bits))
        matched = decode_covert_key_matched(events, pulse, len(bits))
        assert bit_error_rate(matched, bits) < bit_error_rate(naive, bits)
        assert bit_error_rate(matched, bits) <= 1 / len(bits)

    def test_flat_traffic_defeats_it(self):
        """A constant stream gives no offset with separable clusters."""
        rng = np.random.default_rng(2)
        bits = [1, 0] * 8
        pulse = 200
        events = sorted(
            int(e) for e in rng.integers(0, pulse * len(bits), 600)
        )
        decoded = decode_covert_key_matched(events, pulse, len(bits))
        assert bit_error_rate(decoded, bits) >= 0.25

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            decode_covert_key_matched([], 100, 0)
        with pytest.raises(ConfigurationError):
            decode_covert_key_matched([], 0, 4)

    def test_shaped_system_traffic_defeats_matched_decoder(self):
        """End to end: Camouflage must survive the stronger attacker."""
        from repro.analysis.experiments import (
            ExperimentDefaults,
            covert_channel_experiment,
        )

        defaults = ExperimentDefaults(accesses=2000, cycles=16000)
        result = covert_channel_experiment(
            0x2AAA, bits=16, shaped=True, pulse_cycles=2000,
            defaults=defaults,
        )
        matched = decode_covert_key_matched(
            result["bus_events"], 2000, 16
        )
        assert bit_error_rate(matched, result["key_bits"]) >= 0.25

    def test_unshaped_system_traffic_leaks_to_matched_decoder(self):
        from repro.analysis.experiments import (
            ExperimentDefaults,
            covert_channel_experiment,
        )

        defaults = ExperimentDefaults(accesses=2000, cycles=16000)
        result = covert_channel_experiment(
            0x2AAA, bits=16, shaped=False, pulse_cycles=2000,
            defaults=defaults,
        )
        matched = decode_covert_key_matched(
            result["bus_events"], 2000, 16
        )
        assert bit_error_rate(matched, result["key_bits"]) <= 0.1

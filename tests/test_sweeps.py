"""Tests for the parameter-sweep drivers (fast reduced configs)."""

import dataclasses

import pytest

from repro.analysis.experiments import ExperimentDefaults
from repro.analysis.sweeps import (
    fs_interval_sweep,
    mesh_position_leakage,
    noc_latency_sweep,
    tp_turn_length_sweep,
)

FAST = dataclasses.replace(ExperimentDefaults(), accesses=800, cycles=8000)


class TestTpSweep:
    def test_returns_all_points(self):
        out = tp_turn_length_sweep("gcc", "astar", FAST,
                                   turn_lengths=(96, 192))
        assert set(out) == {96, 192}
        assert all(v >= 1.0 for v in out.values())

    def test_turn_length_matters(self):
        """The sweep exists because TP is sensitive to its turn length
        (which way depends on the mix — that's the point of sweeping)."""
        out = tp_turn_length_sweep("gcc", "astar", FAST,
                                   turn_lengths=(64, 256))
        assert out[64] != out[256]
        assert all(v < 20 for v in out.values())  # sane magnitudes


class TestFsSweep:
    def test_returns_slowdown_and_slip(self):
        out = fs_interval_sweep("gcc", "astar", FAST, intervals=(20, 48))
        for values in out.values():
            assert set(values) == {"slowdown", "slip_fraction"}
            assert values["slowdown"] >= 1.0
            assert 0.0 <= values["slip_fraction"] <= 1.0

    def test_looser_interval_slower(self):
        out = fs_interval_sweep("gcc", "mcf", FAST, intervals=(16, 48))
        assert out[48]["slowdown"] > out[16]["slowdown"]


class TestNocSweep:
    def test_latency_monotone(self):
        out = noc_latency_sweep("gcc", FAST, latencies=(1, 8))
        assert out[8] > out[1]

    def test_delta_tracks_round_trip(self):
        out = noc_latency_sweep("sjeng", FAST, latencies=(1, 9))
        delta = out[9] - out[1]
        assert 1.5 * 8 <= delta <= 3.5 * 8


class TestMeshPositionSweep:
    def test_returns_per_position_values(self):
        small = dataclasses.replace(FAST, accesses=500, cycles=6000)
        out = mesh_position_leakage(small, num_cores=4)
        assert set(out) == {1, 2, 3}
        assert all(v >= 0 for v in out.values())


class TestCalibrationUnit:
    def test_calibrate_benchmark_fields(self):
        from repro.analysis.calibration import calibrate_benchmark

        cal = calibrate_benchmark("gcc", FAST)
        assert cal.name == "gcc"
        assert cal.ipc > 0
        assert cal.llc_mpki >= 0
        assert 0 <= cal.row_hit_rate <= 1
        assert cal.burstiness >= 0

    def test_claims_structure(self):
        from repro.analysis.calibration import (
            calibrate_suite,
            check_substitution_claims,
        )

        cals = calibrate_suite(
            FAST,
            benchmarks=("mcf", "astar", "sjeng", "libquantum",
                        "apache", "gcc", "omnetpp"),
        )
        claims = check_substitution_claims(cals)
        assert len(claims) == 4
        assert all(isinstance(v, bool) for v in claims.values())

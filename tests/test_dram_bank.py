"""Unit tests for the per-bank state machine: every timing constraint."""

import pytest

from repro.common.errors import ProtocolError
from repro.dram.bank import Bank, BankState
from repro.dram.timing import DramTiming


@pytest.fixture
def bank(timing):
    return Bank(timing)


class TestActivate:
    def test_starts_precharged(self, bank):
        assert bank.state is BankState.PRECHARGED
        assert bank.open_row is None

    def test_activate_opens_row(self, bank):
        bank.activate(0, row=42)
        assert bank.state is BankState.ACTIVE
        assert bank.open_row == 42
        assert bank.is_row_hit(42)
        assert not bank.is_row_hit(43)

    def test_activate_on_active_bank_is_illegal(self, bank):
        bank.activate(0, row=1)
        with pytest.raises(ProtocolError):
            bank.activate(100, row=2)

    def test_trc_between_activates(self, bank, timing):
        """Same-bank ACT-to-ACT must respect tRC even via precharge."""
        bank.activate(0, row=1)
        bank.precharge(timing.tRAS)
        # tRP satisfied at tRAS + tRP == tRC; both gates align here.
        assert not bank.can_activate(timing.tRC - 1)
        bank.activate(timing.tRC, row=2)

    def test_activate_counts(self, bank, timing):
        bank.activate(0, row=1)
        bank.precharge(timing.tRAS)
        bank.activate(timing.tRC, row=2)
        assert bank.activate_count == 2


class TestColumnCommands:
    def test_read_before_trcd_is_illegal(self, bank, timing):
        bank.activate(0, row=1)
        assert not bank.can_column(timing.tRCD - 1, row=1)
        with pytest.raises(ProtocolError):
            bank.read(timing.tRCD - 1, row=1)

    def test_read_at_trcd(self, bank, timing):
        bank.activate(0, row=1)
        bank.read(timing.tRCD, row=1)
        assert bank.read_count == 1
        assert bank.row_hit_count == 1

    def test_read_wrong_row_is_illegal(self, bank, timing):
        bank.activate(0, row=1)
        with pytest.raises(ProtocolError):
            bank.read(timing.tRCD, row=2)

    def test_read_on_precharged_bank_is_illegal(self, bank):
        with pytest.raises(ProtocolError):
            bank.read(100, row=1)

    def test_tccd_between_column_commands(self, bank, timing):
        bank.activate(0, row=1)
        t = timing.tRCD
        bank.read(t, row=1)
        assert not bank.can_column(t + timing.tCCD - 1, row=1)
        bank.read(t + timing.tCCD, row=1)

    def test_write_then_read_same_bank(self, bank, timing):
        bank.activate(0, row=1)
        t = timing.tRCD
        bank.write(t, row=1)
        bank.read(t + timing.tCCD, row=1)
        assert bank.write_count == 1
        assert bank.read_count == 1


class TestPrecharge:
    def test_before_tras_is_illegal(self, bank, timing):
        bank.activate(0, row=1)
        assert not bank.can_precharge(timing.tRAS - 1)
        with pytest.raises(ProtocolError):
            bank.precharge(timing.tRAS - 1)

    def test_at_tras(self, bank, timing):
        bank.activate(0, row=1)
        bank.precharge(timing.tRAS)
        assert bank.state is BankState.PRECHARGED
        assert bank.open_row is None

    def test_read_delays_precharge_by_trtp(self, bank, timing):
        bank.activate(0, row=1)
        read_cycle = timing.tRAS  # late read pushes precharge past tRAS
        bank.read(read_cycle, row=1)
        assert not bank.can_precharge(read_cycle + timing.tRTP - 1)
        bank.precharge(read_cycle + timing.tRTP)

    def test_write_recovery_delays_precharge(self, bank, timing):
        bank.activate(0, row=1)
        write_cycle = timing.tRAS
        bank.write(write_cycle, row=1)
        earliest = write_cycle + timing.tCWL + timing.tBURST + timing.tWR
        assert not bank.can_precharge(earliest - 1)
        bank.precharge(earliest)

    def test_precharge_on_precharged_bank_is_illegal(self, bank):
        with pytest.raises(ProtocolError):
            bank.precharge(100)

    def test_activate_after_precharge_respects_trp(self, bank, timing):
        bank.activate(0, row=1)
        pre_cycle = timing.tRAS + 50  # late precharge, tRC long satisfied
        bank.precharge(pre_cycle)
        assert not bank.can_activate(pre_cycle + timing.tRP - 1)
        bank.activate(pre_cycle + timing.tRP, row=2)


class TestRefreshBlock:
    def test_blocks_activate_for_trfc(self, bank, timing):
        bank.force_refresh_block(0)
        assert not bank.can_activate(timing.tRFC - 1)
        bank.activate(timing.tRFC, row=1)

    def test_refresh_requires_precharged(self, bank):
        bank.activate(0, row=1)
        with pytest.raises(ProtocolError):
            bank.force_refresh_block(10)

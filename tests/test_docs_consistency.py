"""Documentation consistency: docs must reference real artefacts."""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).parent.parent


def read(name: str) -> str:
    return (ROOT / name).read_text()


class TestDesignIndex:
    def test_every_referenced_bench_exists(self):
        design = read("DESIGN.md")
        for match in re.finditer(r"benchmarks/(bench_\w+\.py)", design):
            path = ROOT / "benchmarks" / match.group(1)
            assert path.exists(), f"DESIGN.md references missing {path.name}"

    def test_every_bench_is_indexed(self):
        design = read("DESIGN.md")
        for bench in (ROOT / "benchmarks").glob("bench_*.py"):
            assert bench.name in design, (
                f"{bench.name} is not referenced in DESIGN.md"
            )

    def test_referenced_modules_exist(self):
        design = read("DESIGN.md")
        for match in re.finditer(r"`repro\.([\w.]+)`", design):
            dotted = match.group(1)
            path = ROOT / "src" / "repro" / (dotted.replace(".", "/"))
            assert (
                path.with_suffix(".py").exists() or (path / "__init__.py").exists()
            ), f"DESIGN.md references missing module repro.{dotted}"


class TestExperimentsDoc:
    def test_referenced_benches_exist(self):
        text = read("EXPERIMENTS.md")
        for match in re.finditer(r"benchmarks/(bench_\w+\.py)", text):
            assert (ROOT / "benchmarks" / match.group(1)).exists()

    def test_covers_all_paper_artefacts(self):
        text = read("EXPERIMENTS.md")
        for artefact in ("Table I", "Figure 2", "Figure 9", "Figure 10",
                         "Figure 11", "Figure 12", "Figure 13",
                         "Figures 14/15", "Figure 8"):
            assert artefact in text, f"EXPERIMENTS.md missing {artefact}"


class TestReadme:
    def test_quickstart_code_runs(self):
        """The README's quickstart block must actually execute."""
        readme = read("README.md")
        blocks = re.findall(r"```python\n(.*?)```", readme, re.S)
        assert blocks, "README has no python quickstart block"
        code = blocks[0]
        # Shrink the run so the docs test stays fast.
        code = code.replace("40_000", "4_000").replace('3000', '300')
        namespace = {}
        exec(compile(code, "README-quickstart", "exec"), namespace)  # noqa: S102

    def test_examples_listed_exist(self):
        readme = read("README.md")
        for match in re.finditer(r"`(\w+\.py)`", readme):
            name = match.group(1)
            if (ROOT / "examples" / name).exists():
                continue
            # Allow references to non-example scripts (none today).
            pytest.fail(f"README lists missing example {name}")

    def test_docs_folder_files_exist(self):
        for name in ("architecture.md", "security.md",
                     "experiments-howto.md", "api.md",
                     "static-analysis.md", "observability.md",
                     "resilience.md", "parallel.md"):
            assert (ROOT / "docs" / name).exists()

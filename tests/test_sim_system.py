"""Integration tests for the full-system simulator."""

import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.core.bins import BinConfiguration, BinSpec, constant_rate_config
from repro.cpu.trace import MemoryTrace, TraceRecord
from repro.memctrl.schedulers import (
    FixedServiceScheduler,
    PriorityFrFcfsScheduler,
    TemporalPartitioningScheduler,
)
from repro.sim.system import (
    RequestShapingPlan,
    ResponseShapingPlan,
    SystemBuilder,
)
from repro.workloads.spec import make_trace


def simple_trace(n=50, stride=64 * 128, gap=10):
    """n accesses striding across rows (mostly misses)."""
    return MemoryTrace(
        [TraceRecord(gap, 0x100000 + i * stride) for i in range(n)],
        name="simple",
    )


class TestBuilder:
    def test_requires_a_core(self):
        with pytest.raises(ConfigurationError):
            SystemBuilder().build()

    def test_rejects_unknown_scheduler(self):
        with pytest.raises(ConfigurationError):
            SystemBuilder().with_scheduler("lottery")

    def test_scheduler_kinds(self):
        for kind, cls in (
            ("tp", TemporalPartitioningScheduler),
            ("fs", FixedServiceScheduler),
            ("priority", PriorityFrFcfsScheduler),
        ):
            b = SystemBuilder().with_scheduler(kind)
            b.add_core(simple_trace())
            b.add_core(simple_trace())
            assert isinstance(b.build().scheduler, cls)

    def test_response_warning_upgrades_scheduler(self):
        """RespC warnings need a priority scheduler; frfcfs upgrades."""
        b = SystemBuilder()
        b.add_core(
            simple_trace(),
            response_shaping=ResponseShapingPlan(
                config=BinConfiguration((2,) * 10)
            ),
        )
        system = b.build()
        assert isinstance(system.scheduler, PriorityFrFcfsScheduler)

    def test_bank_partitioning_caps_cores(self):
        b = SystemBuilder().with_bank_partitioning()
        for _ in range(9):  # more cores than banks
            b.add_core(simple_trace())
        with pytest.raises(ConfigurationError):
            b.build()

    def test_run_rejects_non_positive_cycles(self):
        b = SystemBuilder()
        b.add_core(simple_trace())
        with pytest.raises(SimulationError):
            b.build().run(0)


class TestUnshapedRun:
    def test_single_core_completes(self):
        b = SystemBuilder()
        b.add_core(simple_trace(30))
        system = b.build()
        report = system.run(20000)
        stats = report.core(0)
        assert system.all_cores_done()
        assert stats.finish_cycle is not None
        assert stats.demand_requests == 30
        assert len(stats.memory_latencies) == 30

    def test_conservation_every_request_answered(self):
        """No transaction is lost or duplicated end to end."""
        b = SystemBuilder()
        b.add_core(simple_trace(40))
        b.add_core(simple_trace(40))
        system = b.build()
        system.run(40000)
        assert system.all_cores_done()
        for core_id in (0, 1):
            assert system.delivered_count(core_id) == 40

    def test_latencies_exceed_floor(self):
        """End-to-end latency >= NoC + DRAM minimum."""
        b = SystemBuilder()
        b.add_core(simple_trace(10))
        system = b.build()
        report = system.run(20000)
        timing = system.controller.dram.timing
        floor = 2 * system.request_link.latency + timing.row_hit_latency()
        assert all(lat >= floor for lat in report.core(0).memory_latencies)

    def test_contention_slows_corunners(self):
        """An intense co-runner increases a victim's latency — the raw
        timing channel (paper Figure 1)."""
        alone = SystemBuilder()
        alone.add_core(make_trace("gcc", 800, seed=1))
        lat_alone = alone.build().run(60000).core(0).mean_memory_latency()

        shared = SystemBuilder()
        shared.add_core(make_trace("gcc", 800, seed=1))
        for i in range(3):
            shared.add_core(
                make_trace("mcf", 3000, seed=2 + i, base_address=(i + 1) << 33)
            )
        lat_shared = shared.build().run(60000).core(0).mean_memory_latency()
        assert lat_shared > lat_alone * 1.1

    def test_report_totals(self):
        b = SystemBuilder()
        b.add_core(simple_trace(20))
        report = b.build().run(20000)
        assert report.scheduler_name == "fr-fcfs"
        assert report.request_link_grants >= 20
        assert report.total_throughput() > 0

    def test_run_continues_across_calls(self):
        b = SystemBuilder()
        b.add_core(make_trace("mcf", 2000))
        system = b.build()
        system.run(1000, stop_when_done=False)
        assert system.current_cycle == 1000
        system.run(500, stop_when_done=False)
        assert system.current_cycle == 1500


class TestShapedRuns:
    def test_request_shaping_caps_rate(self):
        """CS config: released requests never exceed the budget."""
        spec = BinSpec()
        config = constant_rate_config(spec, 64)
        b = SystemBuilder()
        b.add_core(
            make_trace("mcf", 4000),
            request_shaping=RequestShapingPlan(
                config=config, spec=spec, generate_fake=False
            ),
        )
        system = b.build()
        system.run(20000, stop_when_done=False)
        path = system.request_paths[0]
        budget = (20000 / 64) * 1.05  # 5% slack for boundary effects
        assert path.real_sent + path.fake_sent <= budget

    def test_shaped_distribution_matches_target(self):
        """The Figure 11 property as an integration test."""
        desired = BinConfiguration((10, 9, 8, 7, 6, 5, 4, 3, 2, 1))
        spec = BinSpec()
        b = SystemBuilder()
        b.add_core(
            make_trace("gcc", 2000),
            request_shaping=RequestShapingPlan(config=desired, spec=spec),
        )
        system = b.build()
        report = system.run(40000, stop_when_done=False)
        shaped = report.core(0).request_shaped
        assert shaped.matches_target(desired.normalized(), tolerance=0.08)

    def test_fake_traffic_reaches_dram(self):
        """Fake requests are serviced by real banks (indistinguishable
        on the wire)."""
        spec = BinSpec()
        config = BinConfiguration((4,) * 10)
        b = SystemBuilder()
        b.add_core(
            make_trace("sjeng", 200),
            request_shaping=RequestShapingPlan(config=config, spec=spec),
        )
        system = b.build()
        report = system.run(30000, stop_when_done=False)
        assert report.core(0).fake_requests_sent > 0
        reads = system.controller.issued_reads
        assert reads >= report.core(0).fake_requests_sent

    def test_response_shaping_throttles(self):
        spec = BinSpec()
        slow = BinConfiguration((0,) * 9 + (3,))  # ~3 responses/period
        b = SystemBuilder()
        b.add_core(
            make_trace("mcf", 2000),
            response_shaping=ResponseShapingPlan(
                config=slow, spec=spec, generate_fake=False
            ),
        )
        system = b.build()
        system.run(20000, stop_when_done=False)
        # ~3 per 2048 cycles → at most ~35 delivered in 20k cycles.
        assert system.delivered_count(0) <= 40

    def test_fake_responses_emitted_for_idle_core(self):
        spec = BinSpec()
        b = SystemBuilder()
        b.add_core(
            make_trace("sjeng", 100),
            response_shaping=ResponseShapingPlan(
                config=BinConfiguration((2,) * 10), spec=spec
            ),
        )
        system = b.build()
        report = system.run(30000, stop_when_done=False)
        assert report.core(0).fake_responses_sent > 0

    def test_tp_lowers_throughput_vs_frfcfs(self):
        """Temporal partitioning costs performance — the paper's
        motivation for Camouflage."""

        def run(scheduler_kind):
            b = SystemBuilder()
            if scheduler_kind == "tp":
                b.with_scheduler("tp", turn_length=128)
            for i in range(4):
                b.add_core(
                    make_trace("mcf", 3000, seed=i, base_address=i << 33)
                )
            return b.build().run(20000, stop_when_done=False)

        assert run("tp").total_throughput() < run("frfcfs").total_throughput()

    def test_bank_partitioning_isolates_banks(self):
        b = SystemBuilder().with_scheduler("fs", interval=24)
        b.with_bank_partitioning()
        for i in range(4):
            b.add_core(make_trace("gcc", 500, seed=i, base_address=i << 33))
        system = b.build()
        system.run(20000, stop_when_done=False)
        # Collect banks touched per core from the controller mapping.
        mapping = system.controller._per_core_mapping
        banks = [
            {mapping[c].decode(a).bank for a in range(0, 1 << 20, 8192)}
            for c in range(4)
        ]
        for i in range(4):
            for j in range(i + 1, 4):
                assert banks[i].isdisjoint(banks[j])

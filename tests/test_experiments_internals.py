"""Unit tests for experiment-driver internals."""

import dataclasses

import numpy as np
import pytest

from repro.analysis.experiments import (
    ExperimentDefaults,
    _avg_slowdown,
    _mix_names,
    constant_rate_interval_for,
    derive_response_config,
    fig9_experiment,
    tradeoff_sweep,
)
from repro.core.bins import BinSpec
from repro.obs import diag


class TestMixNames:
    def test_adversary_plus_three_victims(self):
        assert _mix_names("gcc", "mcf") == ["gcc", "mcf", "mcf", "mcf"]


class TestAvgSlowdown:
    def test_simple_mean(self):
        assert _avg_slowdown([1.0, 2.0], [2.0, 2.0]) == pytest.approx(1.5)

    def test_skips_dead_cores(self):
        value = _avg_slowdown([0.0, 1.0], [2.0, 2.0])
        assert value == pytest.approx(2.0)

    def test_all_dead_is_infinite(self):
        assert _avg_slowdown([0.0], [2.0]) == float("inf")

    def test_skips_zero_alone(self):
        assert _avg_slowdown([1.0, 1.0], [0.0, 3.0]) == pytest.approx(3.0)


class TestConstantRateInterval:
    SPEC = BinSpec(edges=(4, 8, 16, 32), replenish_period=64)

    def setup_method(self):
        diag.reset()

    def teardown_method(self):
        diag.reset()

    def test_largest_edge_not_exceeding_target(self):
        assert constant_rate_interval_for(self.SPEC, 20.0) == 16
        assert constant_rate_interval_for(self.SPEC, 8.0) == 8
        assert diag.count("analysis.cs_interval_clamped") == 0

    def test_clamps_to_nearest_edge_with_diagnostic(self):
        """When every edge exceeds the target (the program outruns the
        fastest bin), the interval clamps to the nearest edge instead
        of silently falling back — and says so via repro.obs."""
        assert constant_rate_interval_for(self.SPEC, 2.5, context="t") == 4
        events = diag.recent("analysis.cs_interval_clamped")
        assert len(events) == 1
        args = events[0].args_dict
        assert args["context"] == "t"
        assert args["target_interval"] == pytest.approx(2.5)
        assert args["interval"] == 4


class TestTradeoffEstimatorComparability:
    """Regression for the ISSUE-5 anchor bug: every point of the
    trade-off sweep — the no-shaping anchor included — must call the
    MI estimator with one configuration (bias_correction=True)."""

    def test_all_points_use_bias_correction(self, monkeypatch):
        import repro.analysis.experiments as experiments
        import repro.security.mutual_information as mi_module

        calls = []
        real = mi_module.windowed_rate_mi

        def recording(*args, **kwargs):
            calls.append(kwargs.get("bias_correction", False))
            return real(*args, **kwargs)

        # Patch both import sites: the anchor (bound at experiments
        # module import) and the shaped points (late-bound inside the
        # worker task, inline when jobs=1).
        monkeypatch.setattr(mi_module, "windowed_rate_mi", recording)
        monkeypatch.setattr(experiments, "windowed_rate_mi", recording)
        fast = dataclasses.replace(ExperimentDefaults(), accesses=600,
                                   cycles=6000)
        points = tradeoff_sweep("gcc", fast, scales=(0.8,), jobs=1)
        assert len(calls) == len(points)
        assert all(calls), "every MI estimate must be bias-corrected"


class TestDeriveResponseConfig:
    FAST = dataclasses.replace(ExperimentDefaults(), accesses=800,
                               cycles=8000)

    def test_rate_scale_shrinks_budget(self):
        full = derive_response_config(
            _mix_names("gcc", "astar"), 0, self.FAST, rate_scale=1.0
        )
        tight = derive_response_config(
            _mix_names("gcc", "astar"), 0, self.FAST, rate_scale=0.5
        )
        assert tight.total_credits < full.total_credits

    def test_valid_configuration(self):
        config = derive_response_config(
            _mix_names("gcc", "astar"), 0, self.FAST
        )
        assert config.num_bins == 10
        assert config.total_credits >= 1


class TestFig9Shape:
    def test_returns_both_curves(self):
        fast = dataclasses.replace(ExperimentDefaults(), accesses=800,
                                   cycles=8000)
        result = fig9_experiment("gcc", fast)
        assert set(result) == {
            "frfcfs_difference", "camouflage_difference", "baseline_total"
        }
        assert isinstance(result["frfcfs_difference"], np.ndarray)
        assert result["baseline_total"] > 0

"""Unit tests for experiment-driver internals."""

import dataclasses

import numpy as np
import pytest

from repro.analysis.experiments import (
    ExperimentDefaults,
    _avg_slowdown,
    _mix_names,
    derive_response_config,
    fig9_experiment,
)


class TestMixNames:
    def test_adversary_plus_three_victims(self):
        assert _mix_names("gcc", "mcf") == ["gcc", "mcf", "mcf", "mcf"]


class TestAvgSlowdown:
    def test_simple_mean(self):
        assert _avg_slowdown([1.0, 2.0], [2.0, 2.0]) == pytest.approx(1.5)

    def test_skips_dead_cores(self):
        value = _avg_slowdown([0.0, 1.0], [2.0, 2.0])
        assert value == pytest.approx(2.0)

    def test_all_dead_is_infinite(self):
        assert _avg_slowdown([0.0], [2.0]) == float("inf")

    def test_skips_zero_alone(self):
        assert _avg_slowdown([1.0, 1.0], [0.0, 3.0]) == pytest.approx(3.0)


class TestDeriveResponseConfig:
    FAST = dataclasses.replace(ExperimentDefaults(), accesses=800,
                               cycles=8000)

    def test_rate_scale_shrinks_budget(self):
        full = derive_response_config(
            _mix_names("gcc", "astar"), 0, self.FAST, rate_scale=1.0
        )
        tight = derive_response_config(
            _mix_names("gcc", "astar"), 0, self.FAST, rate_scale=0.5
        )
        assert tight.total_credits < full.total_credits

    def test_valid_configuration(self):
        config = derive_response_config(
            _mix_names("gcc", "astar"), 0, self.FAST
        )
        assert config.num_bins == 10
        assert config.total_credits >= 1


class TestFig9Shape:
    def test_returns_both_curves(self):
        fast = dataclasses.replace(ExperimentDefaults(), accesses=800,
                                   cycles=8000)
        result = fig9_experiment("gcc", fast)
        assert set(result) == {
            "frfcfs_difference", "camouflage_difference", "baseline_total"
        }
        assert isinstance(result["frfcfs_difference"], np.ndarray)
        assert result["baseline_total"] > 0

"""Tests for auto-precharge (RDA/WRA) and the closed-page policy."""

import pytest

from repro.common.errors import ConfigurationError
from repro.dram.address import AddressMapping
from repro.dram.bank import Bank, BankState
from repro.dram.commands import CommandType, DramCommand
from repro.dram.system import DramSystem
from repro.dram.timing import DramTiming
from repro.memctrl.controller import MemoryController
from repro.memctrl.transaction import MemoryTransaction, TransactionType
from repro.sim.system import SystemBuilder
from repro.workloads.spec import make_trace


class TestAutoPrecharge:
    def test_rda_closes_bank(self, timing):
        bank = Bank(timing)
        bank.activate(0, row=5)
        bank.read(timing.tRCD, row=5, auto_precharge=True)
        assert bank.state is BankState.PRECHARGED
        assert bank.open_row is None
        assert bank.precharge_count == 1

    def test_rda_next_activate_timing(self, timing):
        """ACT after RDA must wait tRTP + tRP past the read (and tRC)."""
        bank = Bank(timing)
        bank.activate(0, row=5)
        read_cycle = timing.tRCD
        bank.read(read_cycle, row=5, auto_precharge=True)
        # tRAS dominates here: close time = max(read+tRTP, tRAS).
        close = max(read_cycle + timing.tRTP, timing.tRAS)
        earliest = max(close + timing.tRP, timing.tRC)
        assert bank.earliest_activate() == earliest
        assert not bank.can_activate(earliest - 1)
        bank.activate(earliest, row=9)

    def test_wra_honours_write_recovery(self, timing):
        bank = Bank(timing)
        bank.activate(0, row=5)
        write_cycle = timing.tRCD
        bank.write(write_cycle, row=5, auto_precharge=True)
        assert bank.state is BankState.PRECHARGED
        recovery = write_cycle + timing.tCWL + timing.tBURST + timing.tWR
        close = max(recovery, timing.tRAS)
        assert bank.earliest_activate() >= close + timing.tRP

    def test_plain_read_leaves_row_open(self, timing):
        bank = Bank(timing)
        bank.activate(0, row=5)
        bank.read(timing.tRCD, row=5)
        assert bank.state is BankState.ACTIVE


class TestClosedPageController:
    def make_controller(self, page_policy):
        dram = DramSystem(enable_refresh=False)
        return MemoryController(dram, page_policy=page_policy)

    def run(self, mc, txns, cycles=400):
        for txn in txns:
            mc.enqueue(txn, 0)
        for cycle in range(cycles):
            mc.tick(cycle)

    def make_txn(self, address):
        return MemoryTransaction(core_id=0, address=address,
                                 kind=TransactionType.READ, created_cycle=0)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            self.make_controller("half-open")

    def test_closed_page_never_row_hits(self):
        mc = self.make_controller("closed")
        txns = [self.make_txn(i * 64) for i in range(6)]  # same row!
        self.run(mc, txns)
        assert all(t.data_ready_cycle is not None for t in txns)
        assert mc.row_hits == 0
        assert mc.row_misses == 6

    def test_open_page_hits_same_row(self):
        mc = self.make_controller("open")
        txns = [self.make_txn(i * 64) for i in range(6)]
        self.run(mc, txns)
        assert mc.row_hits == 5  # all but the first

    def test_closed_page_slower_for_row_local_streams(self):
        def finish_time(policy):
            mc = self.make_controller(policy)
            txns = [self.make_txn(i * 64) for i in range(12)]
            self.run(mc, txns, cycles=1500)
            return max(t.data_ready_cycle for t in txns)

        assert finish_time("closed") > finish_time("open")


class TestClosedPageSystem:
    def test_system_runs_closed_page(self):
        builder = SystemBuilder(seed=2).with_page_policy("closed")
        builder.add_core(make_trace("libquantum", 500))
        report = builder.build().run(20_000, stop_when_done=False)
        assert report.core(0).retired_instructions > 0
        assert report.row_hits == 0

    def test_builder_rejects_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            SystemBuilder().with_page_policy("ajar")

    def test_builder_write_queue(self):
        builder = SystemBuilder(seed=2).with_write_queue()
        builder.add_core(make_trace("bzip", 400))
        system = builder.build()
        assert system.controller.write_queue is not None
        report = system.run(15_000, stop_when_done=False)
        assert report.core(0).retired_instructions > 0

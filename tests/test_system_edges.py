"""Edge-case tests for the system layer."""

import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.core.bins import BinConfiguration, BinSpec
from repro.cpu.trace import MemoryTrace, TraceRecord
from repro.sim.system import (
    RequestShapingPlan,
    ResponseShapingPlan,
    SystemBuilder,
)
from repro.workloads.spec import make_trace


def tiny_trace(n=5):
    return MemoryTrace(
        [TraceRecord(2, i * 8192) for i in range(n)], name="tiny"
    )


class TestEmptyAndTinyWorkloads:
    def test_empty_trace_core_is_done_immediately(self):
        builder = SystemBuilder()
        builder.add_core(MemoryTrace([], name="empty"))
        system = builder.build()
        report = system.run(100)
        assert system.all_cores_done()
        assert report.core(0).retired_instructions == 0

    def test_single_access_trace(self):
        builder = SystemBuilder()
        builder.add_core(MemoryTrace([TraceRecord(0, 0)], name="one"))
        system = builder.build()
        system.run(5000)
        assert system.all_cores_done()
        assert system.delivered_count(0) == 1

    def test_compute_only_after_first_line(self):
        """A trace that reuses one line needs exactly one fill."""
        trace = MemoryTrace(
            [TraceRecord(100, 0x40) for _ in range(20)], name="hot"
        )
        builder = SystemBuilder()
        builder.add_core(trace)
        system = builder.build()
        system.run(10_000)
        assert system.all_cores_done()
        assert system.delivered_count(0) == 1


class TestRunSemantics:
    def test_stop_when_done_halts_early(self):
        builder = SystemBuilder()
        builder.add_core(tiny_trace())
        system = builder.build()
        system.run(100_000, stop_when_done=True)
        assert system.current_cycle < 100_000

    def test_report_is_idempotent(self):
        builder = SystemBuilder()
        builder.add_core(tiny_trace())
        system = builder.build()
        system.run(2000)
        a = system.report()
        b = system.report()
        assert a.core(0).ipc == b.core(0).ipc
        assert a.cycles_run == b.cycles_run

    def test_zero_cycle_run_rejected(self):
        builder = SystemBuilder()
        builder.add_core(tiny_trace())
        with pytest.raises(SimulationError):
            builder.build().run(0)

    def test_run_after_done_is_stable(self):
        builder = SystemBuilder()
        builder.add_core(tiny_trace())
        system = builder.build()
        system.run(20_000)
        retired = system.cores[0].retired_instructions
        system.run(1000, stop_when_done=False)
        assert system.cores[0].retired_instructions == retired


class TestMixedShapingTopologies:
    def test_shaped_and_unshaped_cores_coexist(self):
        spec = BinSpec()
        builder = SystemBuilder(seed=3)
        builder.add_core(
            make_trace("gcc", 400),
            request_shaping=RequestShapingPlan(
                config=BinConfiguration((3,) * 10), spec=spec
            ),
        )
        builder.add_core(make_trace("astar", 400, base_address=1 << 33))
        report = builder.build().run(20_000, stop_when_done=False)
        assert report.core(0).fake_requests_sent > 0
        assert report.core(1).fake_requests_sent == 0

    def test_bdc_single_core(self):
        spec = BinSpec()
        config = BinConfiguration((3,) * 10)
        builder = SystemBuilder(seed=3)
        builder.add_core(
            make_trace("gcc", 300),
            request_shaping=RequestShapingPlan(config=config, spec=spec),
            response_shaping=ResponseShapingPlan(config=config, spec=spec),
        )
        report = builder.build().run(15_000, stop_when_done=False)
        assert report.core(0).retired_instructions > 0

    def test_mesh_with_shaping(self):
        spec = BinSpec()
        builder = SystemBuilder(seed=3).with_noc(topology="mesh")
        builder.add_core(
            make_trace("gcc", 300),
            request_shaping=RequestShapingPlan(
                config=BinConfiguration((3,) * 10), spec=spec
            ),
        )
        builder.add_core(make_trace("astar", 300, base_address=1 << 33))
        report = builder.build().run(15_000, stop_when_done=False)
        assert report.core(0).retired_instructions > 0

    def test_sixteen_cores_need_enough_banks(self):
        builder = SystemBuilder().with_bank_partitioning()
        for i in range(16):
            builder.add_core(tiny_trace())
        with pytest.raises(ConfigurationError):
            builder.build()


class TestDeterminismAcrossRuns:
    def test_identical_builders_identical_reports(self):
        def run():
            builder = SystemBuilder(seed=99)
            builder.add_core(
                make_trace("apache", 500, seed=1),
                request_shaping=RequestShapingPlan(
                    config=BinConfiguration((4,) * 10)
                ),
            )
            builder.add_core(make_trace("mcf", 500, seed=2,
                                        base_address=1 << 33))
            return builder.build().run(12_000, stop_when_done=False)

        a, b = run(), run()
        for core in range(2):
            assert a.core(core).ipc == b.core(core).ipc
            assert (
                a.core(core).request_shaped.counts
                == b.core(core).request_shaped.counts
            )
            assert a.core(core).memory_latencies == b.core(core).memory_latencies

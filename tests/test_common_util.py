"""Unit tests for repro.common.util."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.util import (
    canonical_doc,
    canonical_json_digest,
    ceil_div,
    clamp,
    cumulative_sum,
    geometric_mean,
    is_power_of_two,
    log2_int,
    saturating_add,
)


class TestCeilDiv:
    def test_exact_division(self):
        assert ceil_div(12, 4) == 3

    def test_rounds_up(self):
        assert ceil_div(13, 4) == 4

    def test_zero_numerator(self):
        assert ceil_div(0, 5) == 0

    def test_one(self):
        assert ceil_div(1, 5) == 1

    def test_rejects_zero_denominator(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)

    def test_rejects_negative_denominator(self):
        with pytest.raises(ValueError):
            ceil_div(1, -2)

    @given(st.integers(min_value=0, max_value=10**9),
           st.integers(min_value=1, max_value=10**6))
    def test_matches_math_ceil(self, n, d):
        assert ceil_div(n, d) == math.ceil(n / d)


class TestClamp:
    def test_below(self):
        assert clamp(-5, 0, 10) == 0

    def test_above(self):
        assert clamp(15, 0, 10) == 10

    def test_inside(self):
        assert clamp(5, 0, 10) == 5

    def test_at_edges(self):
        assert clamp(0, 0, 10) == 0
        assert clamp(10, 0, 10) == 10

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            clamp(5, 10, 0)

    @given(st.integers(), st.integers(), st.integers())
    def test_result_always_in_range(self, v, a, b):
        low, high = min(a, b), max(a, b)
        assert low <= clamp(v, low, high) <= high


class TestPowerOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 4, 64, 4096, 1 << 40])
    def test_powers(self, value):
        assert is_power_of_two(value)

    @pytest.mark.parametrize("value", [0, -1, -2, 3, 6, 100, (1 << 40) + 1])
    def test_non_powers(self, value):
        assert not is_power_of_two(value)

    @pytest.mark.parametrize("value,expected", [(1, 0), (2, 1), (64, 6), (4096, 12)])
    def test_log2_int(self, value, expected):
        assert log2_int(value) == expected

    def test_log2_rejects_non_power(self):
        with pytest.raises(ValueError):
            log2_int(3)


class TestSaturatingAdd:
    def test_no_saturation(self):
        assert saturating_add(5, 3, 10) == 8

    def test_saturates(self):
        assert saturating_add(5, 10, 10) == 10

    def test_exact_limit(self):
        assert saturating_add(5, 5, 10) == 10

    def test_rejects_negative_max(self):
        with pytest.raises(ValueError):
            saturating_add(0, 1, -1)

    @given(st.integers(min_value=0, max_value=1023),
           st.integers(min_value=0, max_value=1023))
    def test_never_exceeds_ten_bit_register(self, value, delta):
        assert saturating_add(value, delta, 1023) <= 1023


class TestGeometricMean:
    def test_identity(self):
        assert geometric_mean([2.0]) == pytest.approx(2.0)

    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_invariant_to_order(self):
        assert geometric_mean([1.5, 2.5, 0.5]) == pytest.approx(
            geometric_mean([0.5, 1.5, 2.5])
        )

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1,
                    max_size=20))
    def test_between_min_and_max(self, values):
        gm = geometric_mean(values)
        assert min(values) - 1e-9 <= gm <= max(values) + 1e-9


class TestCumulativeSum:
    def test_empty(self):
        assert cumulative_sum([]) == []

    def test_monotone_for_positive_inputs(self):
        out = cumulative_sum([1, 2, 3])
        assert out == [1, 3, 6]
        assert all(b >= a for a, b in zip(out, out[1:]))

    def test_length_preserved(self):
        assert len(cumulative_sum([5] * 7)) == 7


class TestCanonicalDoc:
    def test_collapses_containers_and_numpy(self):
        import dataclasses

        import numpy as np

        @dataclasses.dataclass
        class Point:
            x: int
            label: str

        doc = canonical_doc({
            "tuple": (1, 2),
            "set": {3},
            "np_scalar": np.int64(4),
            "np_array": np.array([5, 6]),
            "nested": Point(7, "p"),
            8: "int-key",
        })
        assert doc == {
            "tuple": [1, 2],
            "set": [3],
            "np_scalar": 4,
            "np_array": [5, 6],
            "nested": {"x": 7, "label": "p"},
            "8": "int-key",
        }

    def test_rejects_non_finite_floats(self):
        with pytest.raises(ValueError):
            canonical_doc({"bad": float("nan")})
        with pytest.raises(ValueError):
            canonical_doc(float("inf"))

    def test_rejects_unserialisable_objects(self):
        with pytest.raises(TypeError):
            canonical_doc(object())


class TestCanonicalJsonDigest:
    def test_key_order_does_not_matter(self):
        assert canonical_json_digest({"a": 1, "b": 2}) == \
            canonical_json_digest({"b": 2, "a": 1})

    def test_value_changes_do(self):
        assert canonical_json_digest({"a": 1}) != \
            canonical_json_digest({"a": 2})

    def test_length_parameter(self):
        assert len(canonical_json_digest({"a": 1}, length=40)) == 40

"""Interprocedural flow checkers (RL007–RL009) and the taint engine.

Fixture policy mirrors ``test_lint_checkers.py``: every checker gets
at least one true positive (including a two-call-hop flow) and one
clean negative, plus the engine-level unit suite (sanitizer
precedence, cycle-robust fixed point, the clean-attr and arity
escape hatches) and the findings-cache identity checks.

The seeded-mutation tests at the bottom are the PR's demonstration
that RL007 catches a *real* secret→timing defect: they take the
shipped ``RequestCamouflage`` source, route the real-queue occupancy
through a helper into ``next_event_cycle``, and assert the checker
reports the full source→sink path — while the unmutated tree stays
clean.
"""

import io
import json
import pathlib
import textwrap

from repro.lint import LintConfig, lint_paths, lint_source
from repro.lint.baseline import load_baseline
from repro.lint.cache import FindingsCache
from repro.lint.checkers import SecretIndependenceChecker
from repro.lint.config import config_from_table, load_config
from repro.lint.flow import FlowProject
from repro.lint.flow.taint import TaintSpec, run_taint
from repro.lint.sarif import render_sarif
from repro.lint.findings import LintResult

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

CORE_PATH = "src/repro/core/demo.py"


def findings_for(code, path=CORE_PATH, select=None, config=None):
    return lint_source(textwrap.dedent(code), path, config, select=select)


def ids_of(findings):
    return [f.checker_id for f in findings]


def project_of(*named_sources, config=None):
    sources = [(p, textwrap.dedent(s)) for p, s in named_sources]
    return FlowProject.from_sources(sources, config=config or LintConfig())


# -- RL007 secret independence ---------------------------------------------


TWO_HOP_FLOW = """
    class RealQueue:
        def __init__(self):
            self._buffer = []

        def occ(self):
            return len(self._buffer)

    class Shaper:
        def __init__(self, queue):
            self.queue = queue

        def _pressure(self):
            return self.queue.occ()

        def next_event_cycle(self, cycle):
            return cycle + self._pressure()
    """


class TestRL007:
    def test_two_hop_flow_flagged_with_path(self):
        findings = findings_for(TWO_HOP_FLOW, select=["RL007"])
        assert ids_of(findings) == ["RL007"]
        finding = findings[0]
        assert "next_event_cycle" in finding.message
        # The witness chain walks source → sink across both hops.
        notes = [step.note for step in finding.flow]
        assert any("demand-derived" in n for n in notes)
        assert any("_pressure" in n for n in notes)
        assert "returned from" in notes[-1]
        rendered = finding.as_text()
        assert "source:" in rendered and "sink:" in rendered

    def test_control_dependence_is_clean(self):
        findings = findings_for(
            """
            class Shaper:
                def __init__(self, queue):
                    self.queue = queue

                def next_event_cycle(self, cycle):
                    if self.queue.occupancy:
                        return cycle
                    return cycle + 1
            """,
            select=["RL007"],
        )
        assert findings == []

    def test_sanitizer_pragma_launders_the_flow(self):
        findings = findings_for(
            """
            class Shaper:
                def __init__(self):
                    self._buffer = []

                # repro-lint: sanitizer=RL007
                def _credit_gate(self):
                    return len(self._buffer)

                def next_event_cycle(self, cycle):
                    return cycle + self._credit_gate()
            """,
            select=["RL007"],
        )
        assert findings == []

    def test_flow_table_sanitizers_are_unioned(self):
        config = config_from_table(
            {"flow": {"sanitizers": ["*.Shaper._pressure"]}}
        )
        assert "flow" in config.checker_options
        findings = findings_for(
            TWO_HOP_FLOW, select=["RL007"], config=config
        )
        assert findings == []

    def test_cross_module_flow(self):
        project = project_of(
            (
                "src/repro/core/demo_queue.py",
                """
                class RealQueue:
                    def __init__(self):
                        self._buffer = []

                    def occ(self):
                        return len(self._buffer)
                """,
            ),
            (
                "src/repro/core/demo_shaper.py",
                """
                from repro.core.demo_queue import RealQueue

                class DemoShaper:
                    def __init__(self):
                        self.queue = RealQueue()

                    def next_event_cycle(self, cycle):
                        return cycle + self.queue.occ()
                """,
            ),
        )
        findings = list(
            SecretIndependenceChecker().check_project(project)
        )
        assert ids_of(findings) == ["RL007"]
        assert findings[0].path == "src/repro/core/demo_shaper.py"
        paths = {step.path for step in findings[0].flow}
        assert "src/repro/core/demo_queue.py" in paths

    def test_sink_attr_write_is_class_qualified(self):
        # A scheduler-internal `_next_slot` register is not shaper
        # surface; only the shaper classes' registers are sinks.
        findings = findings_for(
            """
            class FixedServiceScheduler:
                def __init__(self, queue):
                    self.queue = queue
                    self._next_slot = 0

                def arm(self):
                    self._next_slot = len(self.queue._buffer)
            """,
            path="src/repro/memctrl/demo_sched.py",
            select=["RL007"],
        )
        assert findings == []
        findings = findings_for(
            """
            class BinShaper:
                def __init__(self, queue):
                    self.queue = queue
                    self._next_replenish = 0

                def arm(self):
                    self._next_replenish = len(self.queue._buffer)
            """,
            select=["RL007"],
        )
        assert ids_of(findings) == ["RL007"]


PROFILED_SHAPER = """
    class EngineProfiler:
        def __init__(self):
            self.station_ticks = {}
            self.station_skips = {}

        def record_station(self, station, ticks=0, skips=0):
            if ticks:
                self.station_ticks[station] = (
                    self.station_ticks.get(station, 0) + ticks
                )
            if skips:
                self.station_skips[station] = (
                    self.station_skips.get(station, 0) + skips
                )

    class Shaper:
        def __init__(self, profiler):
            self._buffer = []
            self._prof = profiler

        def tick(self, cycle):
            if self._prof is not None:
                self._prof.record_station("shaper", ticks=1)
            return cycle + 1

        def next_event_cycle(self, cycle):
            if self._prof is not None:
                self._prof.record_station("shaper", skips=1)
            return cycle + 1
    """


class TestRL007ProfilerTaps:
    """The engine self-profiler's station taps sit inside shaper hot
    paths (``tick``/``next_event_cycle``); they record *that* work
    happened, never how much demand is queued, so the flow checker must
    stay quiet — and must still fire if a tap starts forwarding
    demand-derived state into a timing decision."""

    def test_constant_taps_in_hot_paths_are_clean(self):
        assert findings_for(PROFILED_SHAPER, select=["RL007"]) == []

    def test_tap_laundering_occupancy_into_timing_is_flagged(self):
        findings = findings_for(
            """
            class Shaper:
                def __init__(self, profiler):
                    self._buffer = []
                    self._prof = profiler

                def _tap(self):
                    depth = len(self._buffer)
                    self._prof.record_station("shaper", ticks=depth)
                    return depth

                def next_event_cycle(self, cycle):
                    return cycle + self._tap()
            """,
            select=["RL007"],
        )
        assert ids_of(findings) == ["RL007"]
        assert any("_tap" in step.note for step in findings[0].flow)


# -- RL008 dirty-mark completeness -----------------------------------------


COLUMNAR_PATH = "src/repro/sim/columnar.py"


class TestRL008:
    def test_unpaired_mutation_flagged(self):
        findings = findings_for(
            """
            class Engine:
                def poke(self, i, cycle):
                    self.stations[i].tick(cycle)
            """,
            path=COLUMNAR_PATH,
            select=["RL008"],
        )
        assert ids_of(findings) == ["RL008"]
        assert "tick" in findings[0].message

    def test_intraprocedural_mark_pairs(self):
        findings = findings_for(
            """
            class Engine:
                def poke(self, i, cycle):
                    self.stations[i].tick(cycle)
                    self.dirty[i] = True
            """,
            path=COLUMNAR_PATH,
            select=["RL008"],
        )
        assert findings == []

    def test_mark_in_direct_caller_pairs(self):
        findings = findings_for(
            """
            class Engine:
                def _mutate(self, i, cycle):
                    self.stations[i].tick(cycle)

                def step(self, i, cycle):
                    self._mutate(i, cycle)
                    self.dirty[i] = True
            """,
            path=COLUMNAR_PATH,
            select=["RL008"],
        )
        assert findings == []

    def test_clearing_the_flag_does_not_pair(self):
        findings = findings_for(
            """
            class Engine:
                def poke(self, i, cycle):
                    self.stations[i].tick(cycle)
                    self.dirty[i] = False
            """,
            path=COLUMNAR_PATH,
            select=["RL008"],
        )
        assert ids_of(findings) == ["RL008"]

    def test_out_of_scope_path_ignored(self):
        findings = findings_for(
            """
            class Engine:
                def poke(self, i, cycle):
                    self.stations[i].tick(cycle)
            """,
            path="src/repro/sim/system.py",
            select=["RL008"],
        )
        assert findings == []


# -- RL009 RNG stream discipline -------------------------------------------


class TestRL009:
    def test_helper_using_global_random_flagged(self):
        findings = findings_for(
            """
            import random

            def jitter_helper():
                return random.random()
            """,
            path="src/repro/analysis/helper.py",
            select=["RL009"],
        )
        assert ids_of(findings) == ["RL009"]

    def test_module_level_rng_flagged(self):
        findings = findings_for(
            """
            import random

            _RNG = random.Random(7)
            """,
            path="src/repro/analysis/helper.py",
            select=["RL009"],
        )
        assert ids_of(findings) == ["RL009"]

    def test_deterministic_rng_internals_allowed(self):
        findings = findings_for(
            """
            import random

            class DeterministicRng:
                def __init__(self, seed):
                    self._random = random.Random(seed)
            """,
            path="src/repro/common/rng.py",
            select=["RL009"],
        )
        assert findings == []

    def test_wrapper_helper_rl001_file_allow_misses(self):
        # RL001's allow list is file-granular, so a stray module-level
        # helper inside rng.py sails past it; RL009's allow list is
        # function-granular and still catches it.
        code = """
            import random

            def fresh_stream():
                return random.Random()

            class DeterministicRng:
                def substream(self, label):
                    return fresh_stream()
            """
        findings = findings_for(
            code,
            path="src/repro/common/rng.py",
            select=["RL001", "RL009"],
        )
        assert ids_of(findings) == ["RL009"]


# -- taint engine unit suite -----------------------------------------------


class TestTaintEngine:
    def test_sanitizer_beats_source_on_the_same_call(self):
        project = project_of(
            (
                CORE_PATH,
                """
                class S:
                    def next_event_cycle(self, cycle):
                        return cycle + read_secret()
                """,
            )
        )
        spec = TaintSpec(
            checker_id="RL007",
            source_calls=["*read_secret"],
            sink_returns=["*.next_event_cycle"],
        )
        assert len(run_taint(project, spec)) == 1
        laundered = TaintSpec(
            checker_id="RL007",
            source_calls=["*read_secret"],
            sink_returns=["*.next_event_cycle"],
            sanitizers=["*read_secret"],
        )
        assert run_taint(project, laundered) == []

    def test_fixed_point_terminates_on_recursion(self):
        project = project_of(
            (
                CORE_PATH,
                """
                def ping(x):
                    return pong(x)

                def pong(x):
                    return ping(x) + x

                def entry(q, cycle):
                    return cycle + ping(q.secret_val)
                """,
            )
        )
        spec = TaintSpec(
            checker_id="RL007",
            source_attrs=["*.secret_val"],
            sink_returns=["*.entry"],
        )
        hits = run_taint(project, spec)
        assert [h.kind for h in hits] == ["return"]
        # The witness chain is finite even though the call graph cycles.
        assert 0 < len(hits[0].flow) <= 24

    def test_clean_attrs_break_the_hub(self):
        project = project_of(
            (
                CORE_PATH,
                """
                class Clock:
                    def advance(self, q):
                        self.current_cycle = q.secret_val

                class S:
                    def next_event_cycle(self, clk):
                        return clk.current_cycle
                """,
            )
        )
        spec = TaintSpec(
            checker_id="RL007",
            source_attrs=["*.secret_val"],
            sink_returns=["*.next_event_cycle"],
        )
        assert len(run_taint(project, spec)) == 1
        spec_clean = TaintSpec(
            checker_id="RL007",
            source_attrs=["*.secret_val"],
            sink_returns=["*.next_event_cycle"],
            clean_attrs=["*.current_cycle"],
        )
        assert run_taint(project, spec_clean) == []

    def test_arity_filter_rejects_impossible_dispatch(self):
        # `handle.write(x)` (one argument) cannot dispatch to
        # Bank.write(self, cycle, row); without the arity filter the
        # CHA fallback would bind the tainted trace line into `cycle`.
        bank = """
            class Bank:
                def __init__(self):
                    self._next = 0

                def write(self, cycle, row):
                    self._next = cycle
            """
        spec = TaintSpec(
            checker_id="RL007",
            source_attrs=["*.secret_val"],
            sink_attr_writes=["Bank._next"],
        )
        incompatible = project_of(
            (
                CORE_PATH,
                bank
                + """
            def dump(handle, q):
                handle.write(q.secret_val)
            """,
            )
        )
        assert run_taint(incompatible, spec) == []
        compatible = project_of(
            (
                CORE_PATH,
                bank
                + """
            def dump(bank, q):
                bank.write(q.secret_val, 3)
            """,
            )
        )
        assert [h.kind for h in run_taint(compatible, spec)] == [
            "attr-write"
        ]


# -- findings cache --------------------------------------------------------


FIXTURE_FILES = {
    "pkg_queue.py": """\
class RealQueue:
    def __init__(self):
        self._buffer = []

    def occ(self):
        return len(self._buffer)
""",
    "pkg_shaper.py": """\
from pkg_queue import RealQueue


class Shaper:
    def __init__(self):
        self.queue = RealQueue()

    def next_event_cycle(self, cycle):
        return cycle + self.queue.occ()
""",
}


def _write_fixture(tmp_path):
    src = tmp_path / "src" / "repro" / "core"
    src.mkdir(parents=True)
    for name, body in FIXTURE_FILES.items():
        (src / name).write_text(body)
    return tmp_path / "src"


class TestFindingsCache:
    def test_warm_run_is_identical_and_skips_checkers(self, tmp_path):
        src = _write_fixture(tmp_path)
        config = LintConfig(project_root=str(tmp_path))
        cache = FindingsCache(str(tmp_path))
        cold_timings = {}
        cold = lint_paths(
            [str(src)], config, cache=cache, timings=cold_timings
        )
        assert "RL007" in ids_of(cold.findings)
        assert cold_timings  # checkers actually ran
        warm_timings = {}
        warm = lint_paths(
            [str(src)], config, cache=cache, timings=warm_timings
        )
        assert [f.as_dict() for f in warm.findings] == [
            f.as_dict() for f in cold.findings
        ]
        assert warm_timings == {}  # every entry served from cache

    def test_editing_any_module_invalidates_the_flow_entry(self, tmp_path):
        src = _write_fixture(tmp_path)
        config = LintConfig(project_root=str(tmp_path))
        cache = FindingsCache(str(tmp_path))
        cold = lint_paths([str(src)], config, cache=cache)
        assert "RL007" in ids_of(cold.findings)
        # Fix the flow in the *source* module; the finding sits in the
        # shaper module, which is untouched.
        queue = src / "repro" / "core" / "pkg_queue.py"
        queue.write_text(
            FIXTURE_FILES["pkg_queue.py"].replace(
                "return len(self._buffer)", "return 0"
            )
        )
        fixed = lint_paths([str(src)], config, cache=cache)
        assert "RL007" not in ids_of(fixed.findings)

    def test_corrupt_entry_degrades_to_a_miss(self, tmp_path):
        src = _write_fixture(tmp_path)
        config = LintConfig(project_root=str(tmp_path))
        cache = FindingsCache(str(tmp_path))
        cold = lint_paths([str(src)], config, cache=cache)
        for entry in pathlib.Path(cache.dir).rglob("*.json"):
            entry.write_text("{not json")
        again = lint_paths([str(src)], config, cache=cache)
        assert [f.as_dict() for f in again.findings] == [
            f.as_dict() for f in cold.findings
        ]


# -- SARIF rendering -------------------------------------------------------


def test_sarif_has_rules_locations_and_code_flows():
    findings = findings_for(TWO_HOP_FLOW, select=["RL007"])
    result = LintResult(findings=findings, files_checked=1)
    out = io.StringIO()
    render_sarif(result, out)
    doc = json.loads(out.getvalue())
    run = doc["runs"][0]
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {"RL007", "RL008", "RL009"} <= rule_ids
    sarif_result = run["results"][0]
    assert sarif_result["ruleId"] == "RL007"
    location = sarif_result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == CORE_PATH
    thread = sarif_result["codeFlows"][0]["threadFlows"][0]["locations"]
    assert len(thread) >= 3  # source, via, sink at minimum
    assert sarif_result["partialFingerprints"]["reproLintKey"]


# -- self-clean ------------------------------------------------------------


def test_src_has_no_unbaselined_flow_findings():
    config = load_config(str(REPO_ROOT))
    baseline = load_baseline(str(REPO_ROOT / config.baseline_path))
    result = lint_paths(
        [str(REPO_ROOT / "src")],
        config,
        baseline=baseline,
        select=["RL007", "RL008", "RL009"],
    )
    assert result.findings == [], "\n".join(
        f.as_text() for f in result.findings
    )


# -- seeded in-tree mutation -----------------------------------------------


REQUEST_SHAPER = REPO_ROOT / "src" / "repro" / "core" / "request_shaper.py"

_HELPER = (
    "    def _pressure_hint(self) -> int:\n"
    "        return len(self._buffer)\n"
    "\n"
)


def _mutated_request_shaper():
    source = REQUEST_SHAPER.read_text()
    anchor = "    @property\n    def occupancy"
    assert anchor in source
    mutated = source.replace(anchor, _HELPER + anchor, 1)
    sink = "        return max(cycle, event)\n"
    assert sink in mutated
    mutated = mutated.replace(
        sink,
        "        return max(cycle, event + self._pressure_hint())\n",
        1,
    )
    assert mutated != source
    return mutated


def _core_sources(mutate=False):
    sources = []
    for path in sorted((REPO_ROOT / "src" / "repro" / "core").glob("*.py")):
        rel = path.relative_to(REPO_ROOT).as_posix()
        if mutate and path == REQUEST_SHAPER:
            sources.append((rel, _mutated_request_shaper()))
        else:
            sources.append((rel, path.read_text()))
    return sources


def test_seeded_occupancy_flow_is_caught_with_full_path():
    project = FlowProject.from_sources(
        _core_sources(mutate=True), config=load_config(str(REPO_ROOT))
    )
    findings = [
        f
        for f in SecretIndependenceChecker().check_project(project)
        if "RequestCamouflage" in f.key
    ]
    assert findings, "seeded secret→timing flow was not detected"
    finding = findings[0]
    assert finding.key.startswith(
        "repro.core.request_shaper.RequestCamouflage.next_event_cycle"
    )
    notes = [step.note for step in finding.flow]
    assert any("_buffer" in n for n in notes)  # the source end
    assert any("_pressure_hint" in n for n in notes)  # the helper hop
    assert "returned from" in notes[-1]  # the sink end


def test_unmutated_core_is_clean_through_sanctioned_interfaces():
    # The sanctioned credit/bin/epoch path: the very same modules,
    # unmutated, produce zero RL007 findings — demand crosses only
    # through the sanitizer interfaces.
    project = FlowProject.from_sources(
        _core_sources(mutate=False), config=load_config(str(REPO_ROOT))
    )
    findings = list(SecretIndependenceChecker().check_project(project))
    assert findings == [], "\n".join(f.as_text() for f in findings)

"""Tests for repro.parallel.protocol: framing, digests, typed failures.

The transport contract under test: every way a length-prefixed stream
can lie — wrong magic, corrupted body, truncated frame, an impossible
length field, valid JSON that is not a protocol message — ends in a
typed :class:`ShardTransportError` (stream poisoned) or
:class:`HostLostError` (peer gone), never in garbage silently handed
to the dispatch layer.
"""

import json
import socket
import struct
import threading

import pytest

from repro.common.errors import HostLostError, ShardTransportError
from repro.parallel.protocol import (
    DIGEST_CHARS,
    MAGIC,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameChannel,
    body_digest,
    decode_body,
    encode_frame,
    read_exact,
)

_HEADER_SIZE = 4 + 4 + DIGEST_CHARS


def _pair():
    a, b = socket.socketpair()
    return FrameChannel(a, "a"), FrameChannel(b, "b"), a, b


class TestEncodeDecode:
    def test_roundtrip(self):
        frame = encode_frame("shard", {"shard": 3, "payload": {"x": 1}})
        body = frame[_HEADER_SIZE:]
        kind, payload = decode_body(body)
        assert kind == "shard"
        assert payload == {"shard": 3, "payload": {"x": 1}}

    def test_header_digest_matches_body(self):
        frame = encode_frame("heartbeat", {"seq": 1})
        magic, length, digest = struct.unpack(
            ">4sI16s", frame[:_HEADER_SIZE]
        )
        assert magic == MAGIC
        assert length == len(frame) - _HEADER_SIZE
        assert digest == body_digest(frame[_HEADER_SIZE:])

    def test_encoding_is_deterministic(self):
        """Chaos replay depends on frames being byte-reproducible."""
        a = encode_frame("result", {"b": 2, "a": 1})
        b = encode_frame("result", {"a": 1, "b": 2})
        assert a == b

    def test_non_protocol_json_rejected(self):
        with pytest.raises(ShardTransportError):
            decode_body(b'{"not": "a frame"}')

    def test_non_json_rejected(self):
        with pytest.raises(ShardTransportError):
            decode_body(b"\xff\xfe garbage")

    def test_version_mismatch_rejected(self):
        body = json.dumps(
            {"v": PROTOCOL_VERSION + 1, "kind": "x", "payload": None}
        ).encode()
        with pytest.raises(ShardTransportError):
            decode_body(body)


class TestFrameChannel:
    def test_send_recv_roundtrip(self):
        tx, rx, _, _ = _pair()
        tx.send("shard", {"shard": 7, "lease": "7:1"})
        kind, payload = rx.recv(timeout=5.0)
        assert (kind, payload) == ("shard", {"shard": 7, "lease": "7:1"})
        tx.close()
        rx.close()

    def test_corrupted_body_is_transport_error(self):
        tx, rx, raw_tx, _ = _pair()
        frame = bytearray(encode_frame("result", {"ok": True, "value": 42}))
        frame[-1] ^= 0xFF  # flip one byte of the body
        raw_tx.sendall(bytes(frame))
        with pytest.raises(ShardTransportError, match="digest mismatch"):
            rx.recv(timeout=5.0)
        tx.close()
        rx.close()

    def test_bad_magic_is_transport_error(self):
        tx, rx, raw_tx, _ = _pair()
        frame = bytearray(encode_frame("result", {}))
        frame[0:4] = b"HTTP"
        raw_tx.sendall(bytes(frame))
        with pytest.raises(ShardTransportError, match="magic"):
            rx.recv(timeout=5.0)
        tx.close()
        rx.close()

    def test_oversized_length_is_transport_error(self):
        """A corrupted length field must fail before any allocation."""
        tx, rx, raw_tx, _ = _pair()
        header = struct.pack(
            ">4sI16s", MAGIC, MAX_FRAME_BYTES + 1, b"0" * DIGEST_CHARS
        )
        raw_tx.sendall(header)
        with pytest.raises(ShardTransportError, match="exceeds"):
            rx.recv(timeout=5.0)
        tx.close()
        rx.close()

    def test_truncated_frame_is_host_lost(self):
        tx, rx, raw_tx, _ = _pair()
        frame = encode_frame("result", {"ok": True})
        raw_tx.sendall(frame[: len(frame) - 3])
        raw_tx.close()
        with pytest.raises(HostLostError, match="closed"):
            rx.recv(timeout=5.0)
        rx.close()

    def test_eof_at_frame_boundary_is_host_lost(self):
        tx, rx, raw_tx, _ = _pair()
        raw_tx.close()
        with pytest.raises(HostLostError):
            rx.recv(timeout=5.0)
        rx.close()

    def test_recv_timeout_propagates(self):
        """socket.timeout is the lease layer's signal — it must not be
        swallowed into a transport error."""
        tx, rx, _, _ = _pair()
        with pytest.raises(socket.timeout):
            rx.recv(timeout=0.05)
        tx.close()
        rx.close()

    def test_oversized_send_rejected_locally(self):
        tx, rx, _, _ = _pair()
        with pytest.raises(ShardTransportError):
            tx.send("result", {"blob": "x" * (MAX_FRAME_BYTES + 1)})
        tx.close()
        rx.close()

    def test_multiple_frames_in_sequence(self):
        tx, rx, _, _ = _pair()
        sent = [("heartbeat", {"seq": i}) for i in range(5)]

        def pump():
            for kind, payload in sent:
                tx.send(kind, payload)

        thread = threading.Thread(target=pump)
        thread.start()
        got = [rx.recv(timeout=5.0) for _ in sent]
        thread.join()
        assert got == sent
        tx.close()
        rx.close()


class TestReadExact:
    def test_reads_across_partial_chunks(self):
        a, b = socket.socketpair()

        def dribble():
            for chunk in (b"ab", b"cd", b"ef"):
                a.sendall(chunk)

        thread = threading.Thread(target=dribble)
        thread.start()
        assert read_exact(b, 6) == b"abcdef"
        thread.join()
        a.close()
        b.close()

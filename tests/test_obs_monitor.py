"""Unit tests for the live shaping monitor (TVD / MI checkpoints)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.bins import BinSpec, uniform_config
from repro.core.distribution import InterArrivalHistogram
from repro.obs import EventTracer, ShapingMonitor

SPEC = BinSpec()


def _uniform_pair(gap=10, events=64):
    """Intrinsic == shaped: a stream released at a constant gap."""
    intrinsic = InterArrivalHistogram(SPEC)
    shaped = InterArrivalHistogram(SPEC)
    for i in range(events):
        intrinsic.record(i * gap)
        shaped.record(i * gap)
    return intrinsic, shaped


def _target_for_constant_gap(gap=10):
    """The distribution putting all mass on ``gap``'s bin."""
    frequencies = [0.0] * SPEC.num_bins
    frequencies[SPEC.bin_of(gap)] = 1.0
    return tuple(frequencies)


class TestWiring:
    def test_watch_and_counts(self):
        monitor = ShapingMonitor(interval=100)
        intrinsic, shaped = _uniform_pair()
        monitor.watch(0, "request", intrinsic, shaped)
        assert monitor.watched_count == 1
        assert monitor.next_check_cycle == 100

    def test_target_length_validated(self):
        monitor = ShapingMonitor()
        intrinsic, shaped = _uniform_pair()
        with pytest.raises(ConfigurationError):
            monitor.watch(0, "request", intrinsic, shaped,
                          target_frequencies=(1.0,))

    @pytest.mark.parametrize("kwargs", [
        {"interval": 0},
        {"tvd_threshold": 1.5},
        {"min_events": 0},
        {"mi_window": 1},
    ])
    def test_invalid_construction(self, kwargs):
        with pytest.raises(ConfigurationError):
            ShapingMonitor(**kwargs)


class TestCheckpoints:
    def test_conforming_stream_never_violates(self):
        monitor = ShapingMonitor(interval=100, tvd_threshold=0.25,
                                 min_events=8)
        intrinsic, shaped = _uniform_pair(gap=10)
        monitor.watch(0, "request", intrinsic, shaped,
                      target_frequencies=_target_for_constant_gap(10))
        for cycle in range(500):
            monitor.advance(cycle)
        assert len(monitor.history) == 4
        assert monitor.violations == []
        latest = monitor.latest(0, "request")
        assert latest.tvd_target == pytest.approx(0.0)
        # intrinsic == shaped → TVD between them is 0 and MI is 0
        # (constant sequences carry no information).
        assert latest.tvd_intrinsic == pytest.approx(0.0)
        assert latest.mi_bits == pytest.approx(0.0)

    def test_divergent_stream_flags_violation(self):
        monitor = ShapingMonitor(interval=100, tvd_threshold=0.25,
                                 min_events=8)
        intrinsic, shaped = _uniform_pair(gap=10)
        # The target demands a different bin entirely: TVD vs target = 1.
        monitor.watch(0, "response", intrinsic, shaped,
                      target_frequencies=_target_for_constant_gap(200))
        monitor.advance(100)
        assert len(monitor.violations) == 1
        violation = monitor.violations[0]
        assert violation.cycle == 100
        assert violation.direction == "response"
        assert violation.tvd_target == pytest.approx(1.0)

    def test_min_events_gates_violations(self):
        monitor = ShapingMonitor(interval=100, tvd_threshold=0.25,
                                 min_events=1000)
        intrinsic, shaped = _uniform_pair(gap=10, events=64)
        monitor.watch(0, "request", intrinsic, shaped,
                      target_frequencies=_target_for_constant_gap(200))
        monitor.advance(100)
        assert monitor.violations == []       # too few events to judge
        assert len(monitor.history) == 1      # but the checkpoint exists

    def test_no_target_means_no_guarantee_check(self):
        monitor = ShapingMonitor(interval=100, min_events=1)
        intrinsic, shaped = _uniform_pair()
        monitor.watch(0, "request", intrinsic, shaped)
        monitor.advance(100)
        assert monitor.history[0].tvd_target is None
        assert monitor.violations == []

    def test_violation_emits_trace_event(self):
        tracer = EventTracer()
        monitor = ShapingMonitor(interval=100, tvd_threshold=0.25,
                                 min_events=8, tracer=tracer)
        intrinsic, shaped = _uniform_pair(gap=10)
        monitor.watch(1, "request", intrinsic, shaped,
                      target_frequencies=_target_for_constant_gap(200))
        monitor.advance(100)
        events = tracer.events_in("monitor")
        assert len(events) == 1
        assert events[0].name == "monitor.violation"
        assert events[0].core_id == 1
        assert events[0].args_dict["tvd_target"] == pytest.approx(1.0)

    def test_fill_matches_advance(self):
        # Histograms are frozen across a skipped span, so fill must
        # reproduce exactly what per-cycle advancing records.
        def run(stepper):
            monitor = ShapingMonitor(interval=64, min_events=1)
            intrinsic, shaped = _uniform_pair()
            monitor.watch(0, "request", intrinsic, shaped,
                          target_frequencies=_target_for_constant_gap(10))
            stepper(monitor)
            return monitor.history

        def per_cycle(monitor):
            for cycle in range(400):
                monitor.advance(cycle)

        def skipping(monitor):
            monitor.advance(0)
            monitor.fill(398)
            monitor.advance(399)

        assert run(per_cycle) == run(skipping)

    def test_mi_detects_mirrored_stream(self):
        # A "shaper" that just mirrors the program with two alternating
        # gaps leaks everything: MI over the paired bin sequences is
        # the entropy of the gap process (1 bit here).
        intrinsic = InterArrivalHistogram(SPEC)
        shaped = InterArrivalHistogram(SPEC)
        timestamp = 0
        for i in range(128):
            timestamp += 5 if i % 2 == 0 else 400
            intrinsic.record(timestamp)
            shaped.record(timestamp)
        monitor = ShapingMonitor(interval=100, min_events=1)
        monitor.watch(0, "request", intrinsic, shaped)
        monitor.advance(100)
        assert monitor.history[0].mi_bits == pytest.approx(1.0, abs=0.05)

    def test_summary_rows(self):
        monitor = ShapingMonitor(interval=100, min_events=1)
        intrinsic, shaped = _uniform_pair()
        monitor.watch(0, "request", intrinsic, shaped,
                      target_frequencies=uniform_config(SPEC, 1).normalized())
        monitor.watch(0, "response", intrinsic, shaped)
        monitor.advance(100)
        rows = monitor.summary_rows()
        assert [row[1] for row in rows] == ["request", "response"]
        assert rows[1][3] == "-"  # no target → no guarantee column


def _record_pair(intrinsic, shaped, start, gap, events):
    """Append ``events`` constant-gap releases to both histograms."""
    for i in range(1, events + 1):
        intrinsic.record(start + i * gap)
        shaped.record(start + i * gap)
    return start + events * gap


def _mirrored_pair(events=128):
    """A leaky 'shaper' echoing an alternating 5/400 gap stream."""
    intrinsic = InterArrivalHistogram(SPEC)
    shaped = InterArrivalHistogram(SPEC)
    timestamp = 0
    for i in range(events):
        timestamp += 5 if i % 2 == 0 else 400
        intrinsic.record(timestamp)
        shaped.record(timestamp)
    return intrinsic, shaped


class TestFinalize:
    """The run-end partial window the periodic schedule never reaches."""

    def test_final_tail_violation_is_counted(self):
        # Regression: releases after the last periodic checkpoint were
        # never evaluated, so a divergent tail shorter than the check
        # interval escaped flagging entirely.
        monitor = ShapingMonitor(interval=100, tvd_threshold=0.25,
                                 min_events=8)
        intrinsic, shaped = _uniform_pair(gap=10, events=64)
        monitor.watch(0, "request", intrinsic, shaped,
                      target_frequencies=_target_for_constant_gap(200))
        for cycle in range(101):
            monitor.advance(cycle)
        assert len(monitor.violations) == 1
        _record_pair(intrinsic, shaped, start=64 * 10, gap=10, events=16)
        monitor.finalize(150)
        assert len(monitor.final_samples) == 1
        assert monitor.final_samples[0].cycle == 150
        assert len(monitor.final_violations) == 1
        assert monitor.violation_count == 2

    def test_small_tail_skipped(self):
        # Below final_min_pairs the estimators cannot support a verdict.
        monitor = ShapingMonitor(interval=100, min_events=8,
                                 final_min_pairs=8)
        intrinsic, shaped = _uniform_pair(gap=10, events=64)
        monitor.watch(0, "request", intrinsic, shaped,
                      target_frequencies=_target_for_constant_gap(200))
        monitor.advance(100)
        _record_pair(intrinsic, shaped, start=64 * 10, gap=10, events=4)
        monitor.finalize(150)
        assert monitor.final_samples == []
        assert monitor.final_violations == []

    def test_finalize_overwrites_instead_of_appending(self):
        # A run finalized at a snapshot cut and re-finalized at the
        # true end must converge to the straight run's state.
        monitor = ShapingMonitor(interval=100, min_events=8)
        intrinsic, shaped = _uniform_pair(gap=10, events=64)
        monitor.watch(0, "request", intrinsic, shaped,
                      target_frequencies=_target_for_constant_gap(200))
        monitor.advance(100)
        _record_pair(intrinsic, shaped, start=64 * 10, gap=10, events=16)
        monitor.finalize(150)
        first = list(monitor.final_violations)
        monitor.finalize(150)
        assert monitor.final_violations == first
        assert len(monitor.final_samples) == 1

    def test_finalize_emits_no_trace_events(self):
        tracer = EventTracer()
        monitor = ShapingMonitor(interval=100, min_events=8,
                                 tracer=tracer)
        intrinsic, shaped = _uniform_pair(gap=10, events=64)
        monitor.watch(0, "request", intrinsic, shaped,
                      target_frequencies=_target_for_constant_gap(200))
        monitor.advance(100)
        before = len(tracer.events)
        _record_pair(intrinsic, shaped, start=64 * 10, gap=10, events=16)
        monitor.finalize(150)
        assert len(tracer.events) == before

    def test_degenerate_window_reports_insufficient_support(self):
        # A window collapsed into one bin gives a vacuous MI of 0.0;
        # the summary must not present that as evidence of no leakage.
        monitor = ShapingMonitor(interval=100, min_events=1)
        intrinsic, shaped = _uniform_pair(gap=10)
        monitor.watch(0, "request", intrinsic, shaped)
        monitor.advance(100)
        sample = monitor.latest(0, "request")
        assert sample.mi_degenerate
        assert sample.mi_bits == pytest.approx(0.0)
        assert monitor.summary_rows()[0][5] == "insufficient_support"

    def test_mixed_bins_are_not_degenerate(self):
        intrinsic, shaped = _mirrored_pair()
        monitor = ShapingMonitor(interval=100, min_events=1)
        monitor.watch(0, "request", intrinsic, shaped)
        monitor.advance(100)
        sample = monitor.latest(0, "request")
        assert not sample.mi_degenerate
        assert monitor.summary_rows()[0][5] != "insufficient_support"


class TestDetectChecks:
    @pytest.mark.parametrize("kwargs", [
        {"detect_window": 1},
        {"detect_min_pairs": 0},
        {"auc_threshold": 1.5},
        {"xcorr_threshold": -0.1},
        {"final_min_pairs": 1},
    ])
    def test_invalid_construction(self, kwargs):
        with pytest.raises(ConfigurationError):
            ShapingMonitor(**kwargs)

    def test_detect_columns_appended_only_when_enabled(self):
        intrinsic, shaped = _mirrored_pair()
        plain = ShapingMonitor(interval=100, min_events=1)
        plain.watch(0, "request", intrinsic, shaped)
        plain.advance(100)
        assert len(plain.summary_rows()[0]) == 6

        zoo = ShapingMonitor(interval=100, min_events=1, detect=True,
                             detect_min_pairs=16)
        zoo.watch(0, "request", intrinsic, shaped)
        zoo.advance(100)
        row = zoo.summary_rows()[0]
        assert len(row) == 8
        assert row[7] != "-"  # xcorr runs even without a target

    def test_xcorr_attacker_flags_mirrored_stream(self):
        intrinsic, shaped = _mirrored_pair()
        monitor = ShapingMonitor(interval=100, min_events=1, detect=True,
                                 detect_min_pairs=16, xcorr_threshold=0.5)
        monitor.watch(0, "request", intrinsic, shaped)
        monitor.advance(100)
        sample = monitor.latest(0, "request")
        assert sample.xcorr is not None and sample.xcorr > 0.5
        assert any(v.metric == "xcorr" for v in monitor.detect_violations)
        assert monitor.detect_violation_count >= 1

    def test_detect_violation_emits_trace_event(self):
        tracer = EventTracer()
        intrinsic, shaped = _mirrored_pair()
        monitor = ShapingMonitor(interval=100, min_events=1, detect=True,
                                 detect_min_pairs=16, xcorr_threshold=0.5,
                                 tracer=tracer)
        monitor.watch(2, "request", intrinsic, shaped)
        monitor.advance(100)
        events = tracer.events_in("detect")
        assert events and events[0].name == "detect.violation"
        assert events[0].core_id == 2
        assert events[0].args_dict["metric"] == "xcorr"

    def test_below_min_pairs_abstains(self):
        intrinsic, shaped = _mirrored_pair(events=16)
        monitor = ShapingMonitor(interval=100, min_events=1, detect=True,
                                 detect_min_pairs=64)
        monitor.watch(0, "request", intrinsic, shaped)
        monitor.advance(100)
        sample = monitor.latest(0, "request")
        assert sample.auc is None and sample.xcorr is None
        assert monitor.detect_violations == []

    def test_detect_scores_deterministic(self):
        def run():
            intrinsic, shaped = _mirrored_pair()
            monitor = ShapingMonitor(interval=100, min_events=1,
                                     detect=True, detect_min_pairs=16,
                                     detect_seed=9)
            monitor.watch(0, "request", intrinsic, shaped)
            monitor.advance(300)
            return monitor.history

        assert run() == run()

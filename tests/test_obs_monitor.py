"""Unit tests for the live shaping monitor (TVD / MI checkpoints)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.bins import BinSpec, uniform_config
from repro.core.distribution import InterArrivalHistogram
from repro.obs import EventTracer, ShapingMonitor

SPEC = BinSpec()


def _uniform_pair(gap=10, events=64):
    """Intrinsic == shaped: a stream released at a constant gap."""
    intrinsic = InterArrivalHistogram(SPEC)
    shaped = InterArrivalHistogram(SPEC)
    for i in range(events):
        intrinsic.record(i * gap)
        shaped.record(i * gap)
    return intrinsic, shaped


def _target_for_constant_gap(gap=10):
    """The distribution putting all mass on ``gap``'s bin."""
    frequencies = [0.0] * SPEC.num_bins
    frequencies[SPEC.bin_of(gap)] = 1.0
    return tuple(frequencies)


class TestWiring:
    def test_watch_and_counts(self):
        monitor = ShapingMonitor(interval=100)
        intrinsic, shaped = _uniform_pair()
        monitor.watch(0, "request", intrinsic, shaped)
        assert monitor.watched_count == 1
        assert monitor.next_check_cycle == 100

    def test_target_length_validated(self):
        monitor = ShapingMonitor()
        intrinsic, shaped = _uniform_pair()
        with pytest.raises(ConfigurationError):
            monitor.watch(0, "request", intrinsic, shaped,
                          target_frequencies=(1.0,))

    @pytest.mark.parametrize("kwargs", [
        {"interval": 0},
        {"tvd_threshold": 1.5},
        {"min_events": 0},
        {"mi_window": 1},
    ])
    def test_invalid_construction(self, kwargs):
        with pytest.raises(ConfigurationError):
            ShapingMonitor(**kwargs)


class TestCheckpoints:
    def test_conforming_stream_never_violates(self):
        monitor = ShapingMonitor(interval=100, tvd_threshold=0.25,
                                 min_events=8)
        intrinsic, shaped = _uniform_pair(gap=10)
        monitor.watch(0, "request", intrinsic, shaped,
                      target_frequencies=_target_for_constant_gap(10))
        for cycle in range(500):
            monitor.advance(cycle)
        assert len(monitor.history) == 4
        assert monitor.violations == []
        latest = monitor.latest(0, "request")
        assert latest.tvd_target == pytest.approx(0.0)
        # intrinsic == shaped → TVD between them is 0 and MI is 0
        # (constant sequences carry no information).
        assert latest.tvd_intrinsic == pytest.approx(0.0)
        assert latest.mi_bits == pytest.approx(0.0)

    def test_divergent_stream_flags_violation(self):
        monitor = ShapingMonitor(interval=100, tvd_threshold=0.25,
                                 min_events=8)
        intrinsic, shaped = _uniform_pair(gap=10)
        # The target demands a different bin entirely: TVD vs target = 1.
        monitor.watch(0, "response", intrinsic, shaped,
                      target_frequencies=_target_for_constant_gap(200))
        monitor.advance(100)
        assert len(monitor.violations) == 1
        violation = monitor.violations[0]
        assert violation.cycle == 100
        assert violation.direction == "response"
        assert violation.tvd_target == pytest.approx(1.0)

    def test_min_events_gates_violations(self):
        monitor = ShapingMonitor(interval=100, tvd_threshold=0.25,
                                 min_events=1000)
        intrinsic, shaped = _uniform_pair(gap=10, events=64)
        monitor.watch(0, "request", intrinsic, shaped,
                      target_frequencies=_target_for_constant_gap(200))
        monitor.advance(100)
        assert monitor.violations == []       # too few events to judge
        assert len(monitor.history) == 1      # but the checkpoint exists

    def test_no_target_means_no_guarantee_check(self):
        monitor = ShapingMonitor(interval=100, min_events=1)
        intrinsic, shaped = _uniform_pair()
        monitor.watch(0, "request", intrinsic, shaped)
        monitor.advance(100)
        assert monitor.history[0].tvd_target is None
        assert monitor.violations == []

    def test_violation_emits_trace_event(self):
        tracer = EventTracer()
        monitor = ShapingMonitor(interval=100, tvd_threshold=0.25,
                                 min_events=8, tracer=tracer)
        intrinsic, shaped = _uniform_pair(gap=10)
        monitor.watch(1, "request", intrinsic, shaped,
                      target_frequencies=_target_for_constant_gap(200))
        monitor.advance(100)
        events = tracer.events_in("monitor")
        assert len(events) == 1
        assert events[0].name == "monitor.violation"
        assert events[0].core_id == 1
        assert events[0].args_dict["tvd_target"] == pytest.approx(1.0)

    def test_fill_matches_advance(self):
        # Histograms are frozen across a skipped span, so fill must
        # reproduce exactly what per-cycle advancing records.
        def run(stepper):
            monitor = ShapingMonitor(interval=64, min_events=1)
            intrinsic, shaped = _uniform_pair()
            monitor.watch(0, "request", intrinsic, shaped,
                          target_frequencies=_target_for_constant_gap(10))
            stepper(monitor)
            return monitor.history

        def per_cycle(monitor):
            for cycle in range(400):
                monitor.advance(cycle)

        def skipping(monitor):
            monitor.advance(0)
            monitor.fill(398)
            monitor.advance(399)

        assert run(per_cycle) == run(skipping)

    def test_mi_detects_mirrored_stream(self):
        # A "shaper" that just mirrors the program with two alternating
        # gaps leaks everything: MI over the paired bin sequences is
        # the entropy of the gap process (1 bit here).
        intrinsic = InterArrivalHistogram(SPEC)
        shaped = InterArrivalHistogram(SPEC)
        timestamp = 0
        for i in range(128):
            timestamp += 5 if i % 2 == 0 else 400
            intrinsic.record(timestamp)
            shaped.record(timestamp)
        monitor = ShapingMonitor(interval=100, min_events=1)
        monitor.watch(0, "request", intrinsic, shaped)
        monitor.advance(100)
        assert monitor.history[0].mi_bits == pytest.approx(1.0, abs=0.05)

    def test_summary_rows(self):
        monitor = ShapingMonitor(interval=100, min_events=1)
        intrinsic, shaped = _uniform_pair()
        monitor.watch(0, "request", intrinsic, shaped,
                      target_frequencies=uniform_config(SPEC, 1).normalized())
        monitor.watch(0, "response", intrinsic, shaped)
        monitor.advance(100)
        rows = monitor.summary_rows()
        assert [row[1] for row in rows] == ["request", "response"]
        assert rows[1][3] == "-"  # no target → no guarantee column

"""Unit tests for attack implementations and leakage analysis."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.core.distribution import InterArrivalHistogram
from repro.security.attacks import (
    bit_error_rate,
    corunner_distinguishability,
    decode_covert_key,
)
from repro.security.leakage import (
    accumulated_response_difference,
    max_abs_drift,
    normalized_drift,
    response_rate_series,
)
from repro.sim.stats import CoreStats


class TestCovertDecoder:
    def test_perfect_on_off_signal(self):
        pulse = 100
        bits = [1, 0, 1, 1, 0]
        events = []
        for i, b in enumerate(bits):
            if b:
                events.extend(range(i * pulse, (i + 1) * pulse, 5))
        assert decode_covert_key(events, pulse, len(bits)) == bits

    def test_constant_traffic_decodes_badly(self):
        """A flat (shaped) stream gives the decoder nothing to key on."""
        pulse = 100
        bits = [1, 0, 1, 0]
        events = list(range(0, 400, 7))  # constant rate, no structure
        decoded = decode_covert_key(events, pulse, len(bits))
        assert bit_error_rate(decoded, bits) >= 0.25

    def test_noise_tolerance(self):
        pulse = 100
        bits = [1, 0, 0, 1]
        events = []
        for i, b in enumerate(bits):
            step = 4 if b else 40  # 10x contrast with some noise traffic
            events.extend(range(i * pulse, (i + 1) * pulse, step))
        assert decode_covert_key(events, pulse, len(bits)) == bits

    def test_rejects_zero_bits(self):
        with pytest.raises(ConfigurationError):
            decode_covert_key([], 100, 0)


class TestBitErrorRate:
    def test_perfect(self):
        assert bit_error_rate([1, 0, 1], [1, 0, 1]) == 0.0

    def test_all_wrong(self):
        assert bit_error_rate([0, 1], [1, 0]) == 1.0

    def test_half(self):
        assert bit_error_rate([1, 1], [1, 0]) == 0.5

    def test_rejects_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            bit_error_rate([1], [1, 0])

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            bit_error_rate([], [])


class TestDistinguishability:
    def test_identical_distributions_near_zero(self):
        rng = np.random.default_rng(1)
        a = rng.normal(100, 10, 2000)
        b = rng.normal(100, 10, 2000)
        assert corunner_distinguishability(a, b) < 0.1

    def test_shifted_distributions_large(self):
        rng = np.random.default_rng(2)
        a = rng.normal(100, 10, 2000)
        b = rng.normal(200, 10, 2000)
        assert corunner_distinguishability(a, b) > 5.0

    def test_identical_constants_zero(self):
        assert corunner_distinguishability([5, 5], [5, 5]) == 0.0

    def test_different_constants_infinite(self):
        assert corunner_distinguishability([5, 5], [9, 9]) == float("inf")

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            corunner_distinguishability([], [1.0])


def make_stats(response_times):
    return CoreStats(
        core_id=0, trace_name="t", cycles=1000, retired_instructions=100,
        finish_cycle=None, demand_requests=len(response_times),
        writeback_requests=0, fake_requests_sent=0, fake_responses_sent=0,
        memory_stall_cycles=0, llc_misses=0, llc_accesses=0,
        request_intrinsic=InterArrivalHistogram(),
        request_shaped=InterArrivalHistogram(),
        response_intrinsic=InterArrivalHistogram(),
        response_shaped=InterArrivalHistogram(),
        memory_latencies=[lat for _, lat in response_times],
        response_times=list(response_times),
    )


class TestLeakageCurves:
    def test_identical_runs_flat(self):
        a = make_stats([(10, 50), (20, 60), (30, 40)])
        b = make_stats([(10, 50), (20, 60), (30, 40)])
        diff = accumulated_response_difference(a, b)
        assert np.all(diff == 0)

    def test_slower_corunner_grows(self):
        fast = make_stats([(10, 50), (20, 50), (30, 50)])
        slow = make_stats([(10, 80), (20, 80), (30, 80)])
        diff = accumulated_response_difference(slow, fast)
        assert list(diff) == [30, 60, 90]  # monotone growth

    def test_truncates_to_shorter(self):
        a = make_stats([(10, 50), (20, 50)])
        b = make_stats([(10, 50), (20, 50), (30, 50)])
        assert accumulated_response_difference(a, b).size == 2

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            accumulated_response_difference(make_stats([]), make_stats([]))

    def test_max_abs_drift(self):
        assert max_abs_drift(np.array([1, -5, 3])) == 5.0
        assert max_abs_drift(np.zeros(0)) == 0.0

    def test_normalized_drift(self):
        curve = np.array([10.0, 20.0, 50.0])
        assert normalized_drift(curve, baseline_total=500.0) == pytest.approx(
            0.1
        )
        with pytest.raises(ConfigurationError):
            normalized_drift(curve, baseline_total=0.0)


class TestResponseRateSeries:
    def test_counts_per_window(self):
        series = response_rate_series(
            [(5, 10), (15, 10), (18, 10), (25, 10)], 10, 30
        )
        assert list(series) == [1, 2, 1]

    def test_rejects_zero_window(self):
        with pytest.raises(ConfigurationError):
            response_rate_series([], 0, 100)

"""Exporter layer: OpenMetrics exposition, JSONL, shard merge, names.

The exposition contract backing ``repro serve`` and the CI promtool
regex check: byte-deterministic output, sorted families, cumulative
histogram buckets ending in ``+Inf``, counters suffixed ``_total``,
a trailing ``# EOF``.  The shard-merge protocol is what lets the
``jobs=1`` and ``jobs=N`` merged sweep registries compare with
``cmp`` (tests in ``test_parallel.py``); here we pin its local
algebra — counters/buckets add, gauges last-write-win, versioned
documents, edge-mismatch rejection.

Prometheus-invalid names (``-``, leading digits) must be rejected at
*registration* with the typed :class:`MetricNameError`, not at render
time, so a bad name can never reach a scrape.
"""

import json

import pytest

from repro.common.errors import ConfigurationError, MetricNameError
from repro.obs import IntervalSampler, MetricsRegistry
from repro.obs.export import (
    EXPOSITION_CONTENT_TYPE,
    escape_family_name,
    merge_into,
    merge_serialized,
    render_jsonl,
    render_openmetrics,
    serialize_registry,
    write_jsonl,
)
from repro.obs.metrics import validate_metric_name


def _sample_registry():
    registry = MetricsRegistry()
    registry.counter("requests.total").inc(7)
    registry.gauge("queue.depth").set(3)
    hist = registry.histogram("latency", (10, 20, 40))
    for value in (5, 15, 15, 39, 1000):
        hist.record(value)
    return registry


class TestExposition:
    def test_empty_registry_is_just_eof(self):
        assert render_openmetrics(MetricsRegistry()) == "# EOF\n"

    def test_content_type_is_prometheus_text(self):
        assert EXPOSITION_CONTENT_TYPE.startswith("text/plain")

    def test_families_sorted_and_typed(self):
        text = render_openmetrics(_sample_registry())
        lines = text.splitlines()
        type_lines = [ln for ln in lines if ln.startswith("# TYPE")]
        assert type_lines == [
            "# TYPE latency histogram",
            "# TYPE queue_depth gauge",
            "# TYPE requests_total counter",
        ]
        assert lines[-1] == "# EOF"
        # Every TYPE has a HELP immediately before it.
        for line in type_lines:
            family = line.split()[2]
            assert any(
                ln.startswith(f"# HELP {family} ") for ln in lines
            )

    def test_counter_total_suffix(self):
        text = render_openmetrics(_sample_registry())
        assert "requests_total_total 7" in text.splitlines()

    def test_histogram_buckets_are_cumulative(self):
        text = render_openmetrics(_sample_registry())
        lines = text.splitlines()
        assert 'latency_bucket{le="10"} 1' in lines
        assert 'latency_bucket{le="20"} 3' in lines
        assert 'latency_bucket{le="40"} 4' in lines
        # +Inf includes the overflow record (1000 > last edge).
        assert 'latency_bucket{le="+Inf"} 5' in lines
        assert "latency_sum 1074" in lines
        assert "latency_count 5" in lines

    def test_empty_histogram_renders_zero_buckets(self):
        registry = MetricsRegistry()
        registry.histogram("h", (1,))
        lines = render_openmetrics(registry).splitlines()
        assert 'h_bucket{le="1"} 0' in lines
        assert 'h_bucket{le="+Inf"} 0' in lines
        assert "h_count 0" in lines

    def test_byte_deterministic(self):
        assert render_openmetrics(_sample_registry()) == render_openmetrics(
            _sample_registry()
        )

    def test_labels_sorted_and_escaped(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(1)
        registry.histogram("h", (2,)).record(1)
        text = render_openmetrics(
            registry, labels={"shard": 'a"b\\c', "core": "0"}
        )
        assert 'g{core="0",shard="a\\"b\\\\c"} 1' in text.splitlines()
        # The le label joins the shared labels inside one brace set.
        assert 'h_bucket{core="0",le="2",shard="a\\"b\\\\c"} 1' in text

    def test_invalid_label_key_rejected(self):
        with pytest.raises(MetricNameError):
            render_openmetrics(MetricsRegistry(), labels={"bad-key": "x"})

    def test_family_collision_detected(self):
        registry = MetricsRegistry()
        registry.counter("a.b")
        registry.counter("a_b")
        with pytest.raises(MetricNameError):
            render_openmetrics(registry)

    def test_dot_escaped_to_underscore(self):
        assert escape_family_name("memctrl.queue_depth") == (
            "memctrl_queue_depth"
        )


class TestNamePolicy:
    @pytest.mark.parametrize("name", [
        "ok", "ok_name", "ok.name", "_leading", "ns:sub", "a1.b2",
    ])
    def test_valid_names_pass(self, name):
        assert validate_metric_name(name) == name

    @pytest.mark.parametrize("name", [
        "bad-name", "1leading", "", "sp ace", "unié", "tail-",
    ])
    def test_invalid_names_raise_typed_error(self, name):
        with pytest.raises(MetricNameError) as excinfo:
            validate_metric_name(name)
        assert excinfo.value.name == name
        assert isinstance(excinfo.value, ConfigurationError)

    def test_registry_rejects_at_registration(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricNameError):
            registry.counter("bad-counter")
        with pytest.raises(MetricNameError):
            registry.gauge("2fast")
        with pytest.raises(MetricNameError):
            registry.histogram("no-dashes", (1, 2))
        assert registry.names() == []

    def test_sampler_probe_names_validated(self):
        sampler = IntervalSampler(interval=16)
        with pytest.raises(MetricNameError):
            sampler.add_probe("bad probe", lambda: 0)


class TestJsonl:
    def test_one_canonical_line_per_instrument(self):
        text = render_jsonl(_sample_registry())
        lines = text.splitlines()
        assert len(lines) == 3
        docs = [json.loads(line) for line in lines]
        assert [d["name"] for d in docs] == sorted(d["name"] for d in docs)
        kinds = {d["name"]: d["kind"] for d in docs}
        assert kinds == {
            "requests.total": "counter",
            "queue.depth": "gauge",
            "latency": "histogram",
        }

    def test_empty_registry_renders_empty(self):
        assert render_jsonl(MetricsRegistry()) == ""

    def test_write_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "metrics.jsonl")
        count = write_jsonl(_sample_registry(), path)
        assert count == 3
        with open(path, encoding="utf-8") as fh:
            assert fh.read() == render_jsonl(_sample_registry())


class TestShardMerge:
    def test_serialize_round_trip(self):
        doc = serialize_registry(_sample_registry())
        merged = merge_serialized([doc])
        assert render_openmetrics(merged) == render_openmetrics(
            _sample_registry()
        )

    def test_document_is_json_typed(self):
        doc = serialize_registry(_sample_registry())
        assert doc == json.loads(json.dumps(doc))
        assert doc["version"] == 1

    def test_counters_and_buckets_add_gauges_last_write(self):
        a = MetricsRegistry()
        a.counter("c").inc(2)
        a.gauge("g").set(1)
        a.histogram("h", (10,)).record(5)
        b = MetricsRegistry()
        b.counter("c").inc(3)
        b.gauge("g").set(9)
        b.histogram("h", (10,)).record(50)
        merged = merge_serialized(
            [serialize_registry(a), serialize_registry(b)]
        )
        assert merged.counter("c").value == 5
        assert merged.gauge("g").value == 9
        hist = merged.histogram("h", (10,))
        assert hist.total == 2
        assert list(hist.counts) == [1, 1]

    def test_merge_order_fixed_by_caller_not_jobs(self):
        docs = []
        for value in (4, 8):
            registry = MetricsRegistry()
            registry.gauge("g").set(value)
            docs.append(serialize_registry(registry))
        assert merge_serialized(docs).gauge("g").value == 8
        assert merge_serialized(reversed(docs)).gauge("g").value == 4

    def test_unknown_version_rejected(self):
        with pytest.raises(ConfigurationError):
            merge_into(MetricsRegistry(), {"version": 99})

    def test_histogram_edge_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", (1, 2))
        doc = {
            "version": 1,
            "histograms": {
                "h": {"edges": [1, 3], "counts": [0, 0, 0],
                      "total": 0, "sum": 0},
            },
        }
        with pytest.raises(ConfigurationError):
            merge_into(registry, doc)

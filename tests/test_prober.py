"""Tests for the fine-grained probing adversary (section IV-B4)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.security.bounds import replenishment_window_leakage_bound
from repro.security.prober import (
    classify_conflicts,
    conflict_information,
    prober_trace,
)


class TestProberTrace:
    def test_guaranteed_misses(self):
        trace = prober_trace(50)
        addresses = [r.address for r in trace]
        assert len(set(a & ~63 for a in addresses)) == 50  # all fresh lines

    def test_steady_gaps(self):
        trace = prober_trace(20, gap_insts=80)
        assert all(r.nonmem_insts == 80 for r in trace)

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            prober_trace(0)
        with pytest.raises(ConfigurationError):
            prober_trace(5, gap_insts=-1)


class TestClassifyConflicts:
    def test_thresholding(self):
        observations = classify_conflicts(
            [(100, 50), (200, 90), (300, 40)], baseline_latency=50.0,
            slack=1.3,
        )
        assert observations == [(100, 0), (200, 1), (300, 0)]

    def test_rejects_bad_baseline(self):
        with pytest.raises(ConfigurationError):
            classify_conflicts([], baseline_latency=0.0)

    def test_rejects_slack_below_one(self):
        with pytest.raises(ConfigurationError):
            classify_conflicts([], baseline_latency=10.0, slack=0.5)


class TestConflictInformation:
    def test_correlated_conflicts_leak(self):
        """Conflicts tracking victim activity yield high MI."""
        window = 100
        victim, conflicts = [], []
        for w in range(60):
            active = w % 2 == 0
            if active:
                victim.extend(range(w * window, w * window + 50, 5))
                conflicts.extend(
                    (w * window + i, 1) for i in range(0, 50, 10)
                )
            else:
                conflicts.append((w * window + 10, 0))
        mi = conflict_information(conflicts, victim, window, 6000)
        assert mi > 0.5

    def test_independent_conflicts_near_zero(self):
        import numpy as np

        rng = np.random.default_rng(3)
        window = 100
        victim = sorted(rng.integers(0, 10_000, 400).tolist())
        conflicts = [
            (int(c), int(rng.integers(0, 2)))
            for c in rng.integers(0, 10_000, 300)
        ]
        mi = conflict_information(conflicts, victim, window, 10_000)
        assert mi < 0.2

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            conflict_information([], [], 0, 100)


class TestEndToEndProbing:
    """Run the full attack against the simulator, then defend it."""

    def _run(self, shape_victim: bool):
        from repro.analysis.experiments import staircase_config
        from repro.common.rng import DeterministicRng
        from repro.core.bins import BinSpec
        from repro.sim.system import RequestShapingPlan, SystemBuilder
        from repro.workloads.phased import Phase, PhasedTraceGenerator
        from repro.workloads.synthetic import TraceParameters

        spec = BinSpec(replenish_period=512)
        # Quiet/busy phases sized to comparable *cycle* spans (the
        # busy phase runs ~10x faster, so it gets ~10x the accesses).
        quiet = TraceParameters(gap_mean=250, working_set_bytes=8 << 20,
                                base_address=1 << 33, p_enter_off=0.0)
        busy = TraceParameters(gap_mean=16, working_set_bytes=8 << 20,
                               base_address=1 << 33, p_enter_off=0.0)
        phase_list = []
        for _ in range(4):
            phase_list.append(Phase(quiet, 130))
            phase_list.append(Phase(busy, 900))
        victim_trace = PhasedTraceGenerator(
            phase_list, DeterministicRng(6)
        ).trace()
        plan = None
        if shape_victim:
            plan = RequestShapingPlan(
                config=staircase_config(spec, 1 / 24), spec=spec
            )
        builder = SystemBuilder(seed=6)
        builder.add_core(prober_trace(3000, gap_insts=100))
        builder.add_core(victim_trace, request_shaping=plan)
        system = builder.build()
        system.run(90_000, stop_when_done=False)

        # Baseline: the prober alone.
        alone = SystemBuilder(seed=6)
        alone.add_core(prober_trace(500, gap_insts=100))
        alone_sys = alone.build()
        alone_report = alone_sys.run(20_000, stop_when_done=False)
        baseline = alone_report.core(0).mean_memory_latency()

        report = system.report()
        conflicts = classify_conflicts(
            report.core(0).response_times, baseline, slack=1.15
        )
        victim_times = [
            cycle
            for cycle, port, _txn in system.request_link.grant_trace
            if port == 1
        ]
        mi = conflict_information(
            conflicts, victim_times, window_cycles=2048,
            total_cycles=system.current_cycle,
        )
        return mi

    def test_unshaped_victim_is_probed(self):
        assert self._run(shape_victim=False) > 0.15

    def test_shaping_cuts_probe_information(self):
        open_mi = self._run(shape_victim=False)
        closed_mi = self._run(shape_victim=True)
        assert closed_mi < open_mi / 2

    def test_bound_is_respected(self):
        """Measured per-window leakage never exceeds the analytic
        bound (credits per window of a typical prober config)."""
        from repro.core.bins import BinConfiguration

        measured = self._run(shape_victim=True)
        bound = replenishment_window_leakage_bound(
            BinConfiguration((2,) * 10)
        )
        assert measured <= bound

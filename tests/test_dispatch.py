"""Tests for repro.parallel.dispatch: the fault-tolerant multi-host path.

The load-bearing claims are the ISSUE-9 acceptance criteria: a sweep
executed (a) locally, (b) distributed over worker hosts, (c) distributed
with a host killed mid-sweep, and (d) with every host dead (degraded
local drain) produces byte-identical merged JSON and byte-identical
merged metrics exposition; and an interrupted sweep resumes from the
result cache without re-dispatching cached shards.

Worker hosts here run *in-process* (inline mode, one daemon thread per
host) so the full frame protocol, lease loop and chaos paths are
exercised over real sockets without subprocess management; the CI
``dispatch-smoke`` job covers the real multi-process topology.
"""

import contextlib
import dataclasses
import json
import socket
import time

import pytest

from repro.analysis.experiments import ExperimentDefaults
from repro.common.errors import (
    ConfigurationError,
    DispatchError,
    WorkerFailureError,
)
from repro.obs import diag
from repro.obs.export import render_openmetrics
from repro.parallel import (
    ChaosProxy,
    DispatchCoordinator,
    DispatchLedger,
    FrameCorruption,
    HostCrash,
    LinkStall,
    SlowHost,
    SweepExecutor,
    WorkerHost,
    parse_hosts,
)
from repro.parallel.tasks import make_run_payload, noc_latency_task
from repro.parallel.worker import resolve_task, task_spec
from repro.resilience.retry import RetryPolicy

SMALL = dataclasses.replace(ExperimentDefaults(), accesses=300, cycles=3000)

#: No-backoff policy: unit tests record requeues, they don't sleep.
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_seconds=0.0)


def echo_task(payload):
    return {"x": payload["x"], "double": payload["x"] * 2}


def seeded_echo_task(payload, task_seed=None):
    return {"x": payload["x"], "task_seed": task_seed}


def always_fails_task(payload):
    raise ValueError("permanent failure")


def slow_echo_task(payload):
    time.sleep(payload.get("delay", 0.3))
    return {"x": payload["x"]}


@pytest.fixture(autouse=True)
def _clean_diag():
    diag.reset()
    yield
    diag.reset()


@contextlib.contextmanager
def worker_hosts(count, task_modules=(__name__,), **kwargs):
    """``count`` inline worker hosts serving on daemon threads."""
    import threading

    kwargs.setdefault("inline", True)
    hosts = []
    threads = []
    for _ in range(count):
        host = WorkerHost(task_modules=task_modules, **kwargs)
        host.bind()
        thread = threading.Thread(target=host.serve_forever, daemon=True)
        thread.start()
        hosts.append(host)
        threads.append(thread)
    try:
        yield hosts
    finally:
        for host in hosts:
            host.close()
        for thread in threads:
            thread.join(timeout=5.0)


def addresses(hosts):
    return [(h.host, h.port) for h in hosts]


def dead_address():
    """An address nothing is listening on."""
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return ("127.0.0.1", port)


def sweep_payloads():
    return [
        dict(make_run_payload("gcc", SMALL), noc_latency=latency)
        for latency in (1, 2, 4, 8)
    ]


def run_scenario(payloads, jobs=1, dispatch=None, cache=None, seed=0):
    """One sweep run -> (merged results JSON bytes, metrics bytes, executor)."""
    executor = SweepExecutor(
        jobs=jobs, seed=seed, cache=cache, dispatch=dispatch
    )
    results = executor.map(noc_latency_task, payloads, kind="noc-latency")
    blob = json.dumps(results, sort_keys=True)
    metrics = render_openmetrics(executor.merged_registry())
    return blob, metrics, executor


class TestParseHosts:
    def test_parses_spec(self):
        assert parse_hosts("a:1, b:2,") == [("a", 1), ("b", 2)]

    @pytest.mark.parametrize("spec", ["", "justhost", "h:notaport", ":9"])
    def test_rejects_bad_specs(self, spec):
        with pytest.raises(ConfigurationError):
            parse_hosts(spec)


class TestTaskResolution:
    def test_task_spec_roundtrip(self):
        spec = task_spec(echo_task)
        assert spec == f"{__name__}:echo_task"
        assert resolve_task(spec, (__name__,)) is echo_task

    def test_module_not_in_allowlist(self):
        with pytest.raises(ConfigurationError, match="allowlist"):
            resolve_task("os:system", (__name__,))

    def test_missing_attribute(self):
        with pytest.raises(ConfigurationError, match="no attribute"):
            resolve_task(f"{__name__}:no_such_task", (__name__,))

    def test_non_addressable_task_rejected(self):
        with pytest.raises(ConfigurationError, match="module-level"):
            task_spec(lambda payload: payload)


class TestDispatchBasics:
    def test_results_match_local_run(self):
        payloads = [{"x": i} for i in range(6)]
        local = SweepExecutor(jobs=1).map(echo_task, payloads)
        with worker_hosts(2) as hosts:
            coordinator = DispatchCoordinator(
                addresses(hosts), retry=FAST_RETRY, lease_seconds=10.0
            )
            executor = SweepExecutor(dispatch=coordinator)
            dispatched = executor.map(echo_task, payloads)
            coordinator.close()
        assert dispatched == local
        assert executor.tasks_run == 6
        assert not coordinator.degraded
        doc = coordinator.registry.as_dict()
        assert doc["dispatch.shards_completed"] == 6
        assert doc["dispatch.degraded"] == 0
        assert coordinator.ledger.counts()["completed"] == 6

    def test_task_seeds_travel_to_workers(self):
        payloads = [{"x": i} for i in range(4)]
        local = SweepExecutor(jobs=1, seed=123).map(seeded_echo_task, payloads)
        with worker_hosts(2) as hosts:
            coordinator = DispatchCoordinator(
                addresses(hosts), retry=FAST_RETRY, lease_seconds=10.0
            )
            dispatched = SweepExecutor(seed=123, dispatch=coordinator).map(
                seeded_echo_task, payloads
            )
            coordinator.close()
        assert dispatched == local
        assert all(r["task_seed"] is not None for r in dispatched)

    def test_disallowed_task_fails_in_band(self):
        """A worker refusing a task is a task failure, not a hang."""
        with worker_hosts(1, task_modules=("repro.parallel.tasks",)) as hosts:
            coordinator = DispatchCoordinator(
                addresses(hosts),
                retry=RetryPolicy(max_attempts=2, backoff_seconds=0.0),
                lease_seconds=10.0,
            )
            executor = SweepExecutor(dispatch=coordinator)
            with pytest.raises(WorkerFailureError, match="allowlist"):
                executor.map(echo_task, [{"x": 1}])
            coordinator.close()

    def test_task_exception_exhausts_attempt_budget(self):
        with worker_hosts(1) as hosts:
            coordinator = DispatchCoordinator(
                addresses(hosts),
                retry=RetryPolicy(max_attempts=2, backoff_seconds=0.0),
                lease_seconds=10.0,
            )
            executor = SweepExecutor(dispatch=coordinator)
            with pytest.raises(WorkerFailureError) as excinfo:
                executor.map(always_fails_task, [{"x": 1}])
            coordinator.close()
        assert excinfo.value.attempts == 2
        assert "permanent failure" in str(excinfo.value)
        doc = coordinator.registry.as_dict()
        assert doc["dispatch.task_failures"] == 2
        assert coordinator.ledger.counts()["failed"] == 1

    def test_pooled_worker_sends_heartbeats(self):
        """A host whose pool outlives the heartbeat interval renews its
        lease instead of losing it."""
        with worker_hosts(
            1, inline=False, jobs=1, heartbeat_seconds=0.05
        ) as hosts:
            coordinator = DispatchCoordinator(
                addresses(hosts), retry=FAST_RETRY, lease_seconds=10.0
            )
            result = SweepExecutor(dispatch=coordinator).map(
                slow_echo_task, [{"x": 1, "delay": 0.3}]
            )
            coordinator.close()
        assert result == [{"x": 1}]
        doc = coordinator.registry.as_dict()
        assert doc["dispatch.heartbeats"] >= 1
        assert doc["dispatch.lease_expiries"] == 0


class TestByteIdentityMatrix:
    """ISSUE-9 acceptance: scenarios (a)-(d) merge byte-identically."""

    def test_dispatch_matrix(self, tmp_path):
        payloads = sweep_payloads()
        ref_blob, ref_metrics, _ = run_scenario(payloads, jobs=1)

        # (a) local pooled run
        pooled_blob, pooled_metrics, _ = run_scenario(payloads, jobs=2)
        assert pooled_blob == ref_blob
        assert pooled_metrics == ref_metrics

        # (b) two-host dispatch
        with worker_hosts(2, task_modules=("repro.parallel.tasks",)) as hosts:
            coordinator = DispatchCoordinator(
                addresses(hosts), retry=FAST_RETRY, lease_seconds=30.0,
                ledger=str(tmp_path / "ledger.json"),
            )
            two_blob, two_metrics, executor = run_scenario(
                payloads, dispatch=coordinator
            )
            coordinator.close()
        assert two_blob == ref_blob
        assert two_metrics == ref_metrics
        assert executor.tasks_run == len(payloads)
        assert not coordinator.degraded
        ledger = DispatchLedger.load(str(tmp_path / "ledger.json"))
        assert ledger.counts()["completed"] == len(payloads)

        # (c) two-host dispatch, one host crashed mid-sweep: the shard
        # re-dispatches to the survivor, nothing degrades, bytes hold.
        sleeps = []
        with worker_hosts(2, task_modules=("repro.parallel.tasks",)) as hosts:
            chaos = ChaosProxy([HostCrash(shard_index=1)])
            coordinator = DispatchCoordinator(
                addresses(hosts), lease_seconds=30.0, chaos=chaos,
                sleep=sleeps.append,
            )
            crash_blob, crash_metrics, _ = run_scenario(
                payloads, dispatch=coordinator
            )
            coordinator.close()
        assert crash_blob == ref_blob
        assert crash_metrics == ref_metrics
        assert not coordinator.degraded
        assert chaos.log == [
            {"spec": "HostCrash", "shard": 1, "host": chaos.log[0]["host"]}
        ]
        doc = coordinator.registry.as_dict()
        assert doc["dispatch.hosts_retired"] == 1
        assert doc["dispatch.redispatches"] == 1
        assert doc["dispatch.shards_completed"] == len(payloads)
        # the re-dispatch paced itself with the policy's first backoff
        assert sleeps == [
            coordinator.retry.backoff_delay(1, rng=None)
        ]

        # (d) every host dead: degraded local drain, bytes still hold.
        diag.reset()
        coordinator = DispatchCoordinator(
            [dead_address(), dead_address()],
            retry=FAST_RETRY, lease_seconds=5.0, connect_timeout=0.2,
        )
        dead_blob, dead_metrics, executor = run_scenario(
            payloads, dispatch=coordinator
        )
        coordinator.close()
        assert dead_blob == ref_blob
        assert dead_metrics == ref_metrics
        assert coordinator.degraded
        doc = coordinator.registry.as_dict()
        assert doc["dispatch.degraded"] == 1
        assert doc["dispatch.local_fallback_shards"] == len(
            payloads
        )
        assert coordinator.ledger.counts()["local"] == len(payloads)
        assert diag.count("dispatch.degraded") == 1
        # degraded shards drained through the local paths exactly once
        assert executor.tasks_run == len(payloads)
        assert diag.count("parallel.task_done") == len(payloads)


class TestChaosPaths:
    def run_with_chaos(self, chaos, n_hosts=2):
        payloads = [{"x": i} for i in range(4)]
        local = SweepExecutor(jobs=1).map(echo_task, payloads)
        with worker_hosts(n_hosts) as hosts:
            coordinator = DispatchCoordinator(
                addresses(hosts), retry=FAST_RETRY, lease_seconds=10.0,
                chaos=chaos,
            )
            dispatched = SweepExecutor(dispatch=coordinator).map(
                echo_task, payloads
            )
            coordinator.close()
        assert dispatched == local
        return coordinator

    def test_link_stall_expires_lease(self):
        chaos = ChaosProxy([LinkStall(shard_index=2)])
        coordinator = self.run_with_chaos(chaos)
        doc = coordinator.registry.as_dict()
        assert doc["dispatch.lease_expiries"] == 1
        assert doc["dispatch.hosts_retired"] == 1
        assert not coordinator.degraded
        assert [entry["spec"] for entry in chaos.log] == ["LinkStall"]

    def test_corrupt_frame_never_merges(self):
        chaos = ChaosProxy([FrameCorruption(shard_index=0)])
        coordinator = self.run_with_chaos(chaos)
        doc = coordinator.registry.as_dict()
        assert doc["dispatch.transport_errors"] == 1
        assert doc["dispatch.redispatches"] == 1
        assert not coordinator.degraded

    def test_slow_host_keeps_lease_via_heartbeats(self):
        chaos = ChaosProxy([SlowHost(shard_index=1, heartbeats=3)])
        coordinator = self.run_with_chaos(chaos, n_hosts=1)
        doc = coordinator.registry.as_dict()
        assert doc["dispatch.heartbeats"] == 3
        assert doc["dispatch.lease_expiries"] == 0
        assert doc["dispatch.hosts_retired"] == 0

    def test_unknown_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosProxy(["not a spec"])

    def test_degraded_without_local_runner_raises(self):
        coordinator = DispatchCoordinator(
            [dead_address()], retry=FAST_RETRY, connect_timeout=0.2
        )

        class Shard:
            index = 0
            payload = {"x": 1}
            label = "s0"
            task_seed = None
            digest = None

        with pytest.raises(DispatchError, match="no local\\s+runner"):
            coordinator.run(echo_task, [Shard()])


class TestCacheResume:
    def test_resume_skips_cached_shards(self, tmp_path):
        """An interrupted sweep re-run serves completed shards from the
        cache: they are never dispatched, and the counters prove it."""
        payloads = [{"x": i} for i in range(4)]
        cache_dir = str(tmp_path / "cache")
        # "Interrupted" run: only the first two shards completed.
        SweepExecutor(jobs=1, cache=cache_dir).map(
            echo_task, payloads[:2], kind="echo"
        )
        diag.reset()

        with worker_hosts(2) as hosts:
            coordinator = DispatchCoordinator(
                addresses(hosts), retry=FAST_RETRY, lease_seconds=10.0,
                ledger=str(tmp_path / "ledger.json"),
            )
            executor = SweepExecutor(cache=cache_dir, dispatch=coordinator)
            resumed = executor.map(echo_task, payloads, kind="echo")
            coordinator.close()

        assert resumed == SweepExecutor(jobs=1).map(echo_task, payloads)
        assert executor.tasks_cached == 2
        assert executor.tasks_run == 2
        assert diag.count("parallel.cache_hit") == 2
        doc = coordinator.registry.as_dict()
        assert doc["dispatch.cached_shards"] == 2
        assert doc["dispatch.shards_dispatched"] == 2
        ledger = DispatchLedger.load(str(tmp_path / "ledger.json"))
        counts = ledger.counts()
        assert counts["cached"] == 2
        assert counts["completed"] == 2

    def test_warm_cache_skips_dispatch_entirely(self, tmp_path):
        payloads = [{"x": i} for i in range(3)]
        cache_dir = str(tmp_path / "cache")
        with worker_hosts(1) as hosts:
            coordinator = DispatchCoordinator(
                addresses(hosts), retry=FAST_RETRY, lease_seconds=10.0
            )
            first = SweepExecutor(cache=cache_dir, dispatch=coordinator).map(
                echo_task, payloads, kind="echo"
            )
            coordinator.close()
        # Second run: fully warm cache; the dead coordinator is never
        # consulted because no shard misses.
        coordinator = DispatchCoordinator(
            [dead_address()], retry=FAST_RETRY, connect_timeout=0.2
        )
        executor = SweepExecutor(cache=cache_dir, dispatch=coordinator)
        second = executor.map(echo_task, payloads, kind="echo")
        assert second == first
        assert executor.tasks_cached == 3
        assert executor.tasks_run == 0
        doc = coordinator.registry.as_dict()
        assert doc["dispatch.shards_dispatched"] == 0


class TestLedger:
    def test_record_and_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "ledger.json")
        ledger = DispatchLedger(path)
        ledger.begin("echo", ["h:1", "h:2"], shard_count=2)
        ledger.record(0, "queued", label="s0")
        ledger.record(0, "leased", label="s0", host="h:1", attempts=1)
        ledger.record(0, "completed", label="s0", host="h:1", attempts=1)
        ledger.record(1, "cached", label="s1", digest="abc123")
        loaded = DispatchLedger.load(path)
        assert loaded.states() == {0: "completed", 1: "cached"}
        assert loaded.counts()["completed"] == 1
        assert loaded.doc["hosts"] == ["h:1", "h:2"]
        assert not loaded.doc["degraded"]

    def test_rejects_unknown_state(self):
        with pytest.raises(ConfigurationError, match="shard state"):
            DispatchLedger(None).record(0, "vanished")

    def test_load_rejects_non_ledger(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{}", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="not a dispatch ledger"):
            DispatchLedger.load(str(path))

    def test_load_rejects_bad_schema(self, tmp_path):
        path = tmp_path / "ledger.json"
        path.write_text(
            json.dumps({"ledger_schema": 999}), encoding="utf-8"
        )
        with pytest.raises(ConfigurationError, match="schema"):
            DispatchLedger.load(str(path))


class TestCoordinatorValidation:
    def test_needs_hosts(self):
        with pytest.raises(ConfigurationError):
            DispatchCoordinator([])

    def test_needs_positive_lease(self):
        with pytest.raises(ConfigurationError):
            DispatchCoordinator([("h", 1)], lease_seconds=0.0)

    def test_accepts_spec_string(self):
        coordinator = DispatchCoordinator("a:1,b:2")
        assert [h.name for h in coordinator._hosts] == ["a:1", "b:2"]

"""Unit tests for the set-associative cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.cache.cache import CacheConfig, SetAssociativeCache


def tiny_cache(ways=2, sets=4, line=64):
    return SetAssociativeCache(
        CacheConfig(size_bytes=ways * sets * line, ways=ways, line_bytes=line)
    )


class TestConfig:
    def test_num_sets(self):
        cfg = CacheConfig(size_bytes=32 * 1024, ways=4, line_bytes=64)
        assert cfg.num_sets == 128

    def test_rejects_indivisible_size(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=1000, ways=3, line_bytes=64)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=3 * 64 * 2, ways=2, line_bytes=64)

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=1024, ways=2, line_bytes=48)


class TestBasicOperation:
    def test_cold_miss(self):
        c = tiny_cache()
        assert not c.access(0, is_write=False)
        assert c.misses == 1

    def test_hit_after_fill(self):
        c = tiny_cache()
        c.fill(0)
        assert c.access(0, is_write=False)
        assert c.hits == 1

    def test_line_granularity(self):
        c = tiny_cache()
        c.fill(0)
        assert c.access(63, is_write=False)   # same line
        assert not c.access(64, is_write=False)  # next line

    def test_line_address(self):
        c = tiny_cache()
        assert c.line_address(0) == 0
        assert c.line_address(63) == 0
        assert c.line_address(64) == 64
        assert c.line_address(130) == 128

    def test_invalidate(self):
        c = tiny_cache()
        c.fill(0)
        assert c.invalidate(0)
        assert not c.access(0, is_write=False)
        assert not c.invalidate(0)


class TestLru:
    def test_evicts_least_recently_used(self):
        c = tiny_cache(ways=2, sets=1)
        c.fill(0)          # line A
        c.fill(64)         # line B
        c.access(0, False)  # touch A: B becomes LRU
        victim = c.fill(128)
        assert victim is not None
        assert victim.address == 64

    def test_fill_refreshes_lru(self):
        c = tiny_cache(ways=2, sets=1)
        c.fill(0)
        c.fill(64)
        c.fill(0)  # refresh A
        victim = c.fill(128)
        assert victim.address == 64

    def test_write_hit_sets_dirty(self):
        c = tiny_cache(ways=1, sets=1)
        c.fill(0, dirty=False)
        c.access(0, is_write=True)
        victim = c.fill(64)
        assert victim.dirty

    def test_clean_eviction_not_dirty(self):
        c = tiny_cache(ways=1, sets=1)
        c.fill(0, dirty=False)
        victim = c.fill(64)
        assert not victim.dirty
        assert c.writebacks == 0

    def test_dirty_eviction_counts_writeback(self):
        c = tiny_cache(ways=1, sets=1)
        c.fill(0, dirty=True)
        victim = c.fill(64)
        assert victim.dirty
        assert c.writebacks == 1

    def test_refill_merges_dirty_bit(self):
        c = tiny_cache(ways=1, sets=1)
        c.fill(0, dirty=True)
        c.fill(0, dirty=False)  # re-fill does not clean the line
        victim = c.fill(64)
        assert victim.dirty


class TestSetIndexing:
    def test_different_sets_do_not_conflict(self):
        c = tiny_cache(ways=1, sets=4)
        # These addresses map to different sets: no evictions.
        for i in range(4):
            assert c.fill(i * 64) is None
        assert c.resident_lines() == 4

    def test_same_set_aliases_conflict(self):
        c = tiny_cache(ways=1, sets=4)
        c.fill(0)
        victim = c.fill(4 * 64)  # wraps to set 0
        assert victim is not None and victim.address == 0


class TestOccupancyInvariant:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1,
                    max_size=200))
    def test_never_exceeds_capacity(self, addresses):
        c = tiny_cache(ways=2, sets=4)
        for a in addresses:
            if not c.access(a, is_write=False):
                c.fill(a)
        assert c.resident_lines() <= 8

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1,
                    max_size=100))
    def test_hit_after_fill_always(self, addresses):
        """Any just-filled line must hit immediately (no lost fills)."""
        c = tiny_cache(ways=2, sets=4)
        for a in addresses:
            c.fill(a)
            assert c.lookup(a)

    def test_miss_rate(self):
        c = tiny_cache()
        c.access(0, False)
        c.fill(0)
        c.access(0, False)
        assert c.miss_rate == pytest.approx(0.5)

"""Unit tests for the top-level DRAM system model."""

import pytest

from repro.dram.address import AddressMapping
from repro.dram.commands import CommandType, DramCommand
from repro.dram.organization import DramOrganization
from repro.dram.system import DramSystem
from repro.dram.timing import DramTiming


@pytest.fixture
def mapping(organization):
    return AddressMapping(organization)


class TestRequiredCommand:
    def test_closed_bank_needs_activate(self, dram, mapping):
        d = mapping.decode(0)
        cmd = dram.required_command(d, is_write=False)
        assert cmd.kind is CommandType.ACTIVATE

    def test_open_row_needs_column(self, dram, mapping, timing):
        d = mapping.decode(0)
        dram.issue(DramCommand(CommandType.ACTIVATE, d), 0)
        assert dram.required_command(d, False).kind is CommandType.READ
        assert dram.required_command(d, True).kind is CommandType.WRITE

    def test_row_conflict_needs_precharge(self, dram, mapping, organization):
        d0 = mapping.decode(0)
        # Same bank, different row: one full bank stride of rows away.
        conflict_addr = organization.row_buffer_bytes * organization.banks_per_rank
        d1 = mapping.decode(conflict_addr)
        assert d0.bank == d1.bank and d0.row != d1.row
        dram.issue(DramCommand(CommandType.ACTIVATE, d0), 0)
        assert dram.required_command(d1, False).kind is CommandType.PRECHARGE


class TestCommandSequence:
    def test_full_read_sequence(self, dram, mapping, timing):
        """ACT → RD walks the constraint chain and returns data."""
        d = mapping.decode(4096)
        act = dram.required_command(d, False)
        assert dram.can_issue(act, 0)
        dram.issue(act, 0)
        rd = dram.required_command(d, False)
        assert rd.kind is CommandType.READ
        assert not dram.can_issue(rd, timing.tRCD - 1)
        end = dram.issue(rd, timing.tRCD)
        assert end == timing.tRCD + timing.tCAS + timing.tBURST

    def test_row_hit_tracking(self, dram, mapping, timing):
        d = mapping.decode(0)
        assert not dram.is_row_hit(d)
        dram.issue(DramCommand(CommandType.ACTIVATE, d), 0)
        assert dram.is_row_hit(d)
        assert dram.total_activates() == 1

    def test_can_advance_matches_can_issue(self, dram, mapping, timing):
        """The scheduler fast path agrees with the slow path."""
        d = mapping.decode(128)
        for cycle in range(0, 40):
            cmd = dram.required_command(d, False)
            assert dram.can_advance(d, False, cycle) == dram.can_issue(cmd, cycle)
            if dram.can_issue(cmd, cycle):
                dram.issue(cmd, cycle)
                if cmd.is_column:
                    break


class TestRefreshManagement:
    def test_no_refresh_when_disabled(self):
        dram = DramSystem(enable_refresh=False)
        assert dram.refresh_due(10**9) == []

    def test_refresh_due_after_trefi(self):
        dram = DramSystem(enable_refresh=True)
        assert dram.refresh_due(dram.timing.tREFI - 1) == []
        assert dram.refresh_due(dram.timing.tREFI) == [(0, 0)]

    def test_refresh_issue_resets_deadline(self):
        dram = DramSystem(enable_refresh=True)
        t = dram.timing.tREFI
        from repro.dram.address import DecodedAddress

        ref = DramCommand(
            CommandType.REFRESH, DecodedAddress(0, 0, 0, 0, 0)
        )
        dram.issue(ref, t)
        assert dram.refresh_due(t) == []
        assert dram.refresh_due(2 * t) == [(0, 0)]

    def test_precharge_targets_lists_open_banks(self, mapping):
        dram = DramSystem(enable_refresh=True)
        d = mapping.decode(0)
        dram.issue(DramCommand(CommandType.ACTIVATE, d), 0)
        assert dram.refresh_precharge_targets(0, 0) == [d.bank]


class TestStatistics:
    def test_data_bus_busy_cycles(self, dram, mapping, timing):
        d = mapping.decode(0)
        dram.issue(DramCommand(CommandType.ACTIVATE, d), 0)
        dram.issue(DramCommand(CommandType.READ, d), timing.tRCD)
        assert dram.data_bus_busy_cycles() == timing.tBURST

    def test_row_hits_counted_per_column_command(self, dram, mapping, timing):
        d = mapping.decode(0)
        dram.issue(DramCommand(CommandType.ACTIVATE, d), 0)
        dram.issue(DramCommand(CommandType.READ, d), timing.tRCD)
        dram.issue(DramCommand(CommandType.READ, d), timing.tRCD + timing.tCCD)
        assert dram.total_row_hits() == 2

"""Checkpoint/restore: envelope validation and bit-identical resume.

The headline guarantee (docs/resilience.md): a run interrupted at any
cycle and resumed from its snapshot is **bit-identical** to the
uninterrupted run — same :class:`SystemReport`, same obs event stream,
same monitor samples — under both execution engines.  The fast cases
cover each shaping feature once; the ``slow`` sweep drives randomized
configurations and cut points.
"""

import random
import shutil

import pytest

from repro.common.errors import SnapshotError
from repro.core.bins import BinSpec, uniform_config
from repro.ga.online import OnlineGaTuner, TunerConfig, resume_tuner
from repro.memctrl.transaction import txn_id_watermark
from repro.resilience import (
    ResilienceConfig,
    read_snapshot_info,
    restore_system,
    snapshot_system,
)
from repro.resilience.snapshot import (
    KIND_SYSTEM,
    dump_snapshot,
    load_snapshot,
    parse_snapshot,
    save_snapshot,
)
from repro.sim.stats import report_digest
from repro.sim.system import (
    EpochShapingPlan,
    RequestShapingPlan,
    ResponseShapingPlan,
    SystemBuilder,
)
from repro.workloads import make_trace

from tests.test_ga_online import build_tunable_system

SPEC = BinSpec()


# -- envelope validation ---------------------------------------------------


class TestEnvelope:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "obj.snap")
        meta = save_snapshot(path, {"x": [1, 2, 3]}, "system", 42)
        assert meta["kind"] == "system"
        assert meta["cycle"] == 42
        obj, loaded_meta = load_snapshot(path)
        assert obj == {"x": [1, 2, 3]}
        assert loaded_meta == meta

    def test_bad_magic(self):
        with pytest.raises(SnapshotError, match="magic"):
            parse_snapshot(b"NOTASNAP v1\n{}\npayload")

    def test_bad_version_field(self):
        with pytest.raises(SnapshotError, match="version"):
            parse_snapshot(b"REPROSNAP one\n{}\npayload")

    def test_unsupported_version(self):
        with pytest.raises(SnapshotError, match="v99"):
            parse_snapshot(b'REPROSNAP v99\n{"kind": "system"}\npayload')

    def test_corrupt_metadata(self):
        with pytest.raises(SnapshotError, match="metadata"):
            parse_snapshot(b"REPROSNAP v1\nnot-json\npayload")

    def test_metadata_must_have_kind(self):
        with pytest.raises(SnapshotError, match="kind"):
            parse_snapshot(b'REPROSNAP v1\n{"cycle": 1}\npayload')

    def test_truncated_payload(self):
        with pytest.raises(SnapshotError, match="truncated"):
            parse_snapshot(b'REPROSNAP v1\n{"kind": "system"}\n')

    def test_wrong_kind_rejected(self, tmp_path):
        path = str(tmp_path / "obj.snap")
        save_snapshot(path, [1], "tuner", 0)
        with pytest.raises(SnapshotError, match="tuner"):
            load_snapshot(path, expect_kind=KIND_SYSTEM)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot read"):
            load_snapshot(str(tmp_path / "nope.snap"))
        with pytest.raises(SnapshotError, match="cannot read"):
            read_snapshot_info(str(tmp_path / "nope.snap"))

    def test_unpicklable_object(self):
        with pytest.raises(SnapshotError, match="serialisable"):
            dump_snapshot(lambda: None, "system", 0)

    def test_read_info_skips_payload(self, tmp_path):
        path = str(tmp_path / "obj.snap")
        save_snapshot(path, list(range(100_000)), "system", 7,
                      extra_meta={"note": "big"})
        info = read_snapshot_info(path)
        assert info["cycle"] == 7
        assert info["note"] == "big"

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        path = tmp_path / "obj.snap"
        save_snapshot(str(path), [1], "system", 0)
        assert path.exists()
        assert not (tmp_path / "obj.snap.tmp").exists()

    def test_watermark_recorded_and_advanced(self, tmp_path):
        path = str(tmp_path / "obj.snap")
        meta = save_snapshot(path, [1], "system", 0)
        assert meta["txn_watermark"] == txn_id_watermark()
        load_snapshot(path)
        assert txn_id_watermark() >= meta["txn_watermark"]


# -- bit-identical interrupted resume --------------------------------------


def _observed_resilient_builder(
    seed=7,
    traces=(("gcc", 250), ("astar", 250)),
    response=True,
    jitter=False,
    epoch=False,
    resilience=None,
):
    """A shaped system with tracing, sampling, monitoring and (optionally)
    run-loop checkpointing attached — the full artifact surface the
    bit-identical guarantee covers."""
    config = uniform_config(SPEC, 2)
    builder = SystemBuilder(seed=seed)
    for index, (name, accesses) in enumerate(traces):
        builder.add_core(
            make_trace(name, accesses, seed=seed + index),
            request_shaping=(
                RequestShapingPlan(config, jitter=jitter)
                if not epoch else None
            ),
            response_shaping=(
                ResponseShapingPlan(config, jitter=jitter)
                if response else None
            ),
            epoch_shaping=EpochShapingPlan() if epoch else None,
        )
    builder.with_observability(
        trace=True, sample_interval=1024, monitor=True, monitor_interval=2048
    )
    if resilience is not None:
        builder.with_resilience(resilience)
    return builder


def _obs_artifacts(system):
    obs = system.observability
    return (
        obs.tracer.events,
        obs.tracer.counts,
        obs.sampler.samples,
        obs.monitor.history,
        obs.monitor.violations,
    )


def _assert_resume_identical(make_builder, cut, cycles, engine, tmp_path):
    """run(cut); snapshot; restore; run(rest) ≡ run(cycles) straight."""
    straight = make_builder().build()
    report_straight = straight.run(cycles, engine=engine)

    interrupted = make_builder().build()
    interrupted.run(cut, stop_when_done=False, engine=engine)
    snap = str(tmp_path / f"cut-{engine}.snap")
    meta = snapshot_system(interrupted, snap)
    assert meta["cycle"] == cut
    del interrupted  # the "crash": only the snapshot file survives

    resumed = restore_system(snap)
    assert resumed.current_cycle == cut
    report_resumed = resumed.run(cycles - cut, engine=engine)

    assert report_straight == report_resumed
    assert report_digest(report_straight) == report_digest(report_resumed)
    assert _obs_artifacts(straight) == _obs_artifacts(resumed)


class TestResumeIdentical:
    @pytest.mark.parametrize("engine", ["cycle", "next_event", "columnar"])
    def test_bdc(self, engine, tmp_path):
        _assert_resume_identical(
            _observed_resilient_builder, 9_000, 25_000, engine, tmp_path
        )

    @pytest.mark.parametrize("engine", ["cycle", "next_event", "columnar"])
    def test_bdc_jitter(self, engine, tmp_path):
        _assert_resume_identical(
            lambda: _observed_resilient_builder(jitter=True),
            9_000, 25_000, engine, tmp_path,
        )

    @pytest.mark.parametrize("engine", ["cycle", "next_event", "columnar"])
    def test_epoch_shaping(self, engine, tmp_path):
        _assert_resume_identical(
            lambda: _observed_resilient_builder(epoch=True),
            9_000, 25_000, engine, tmp_path,
        )

    def test_cross_engine_resume(self, tmp_path):
        """A snapshot written under one engine resumes under the other."""
        straight = _observed_resilient_builder().build()
        digest = report_digest(straight.run(25_000, engine="cycle"))

        system = _observed_resilient_builder().build()
        system.run(9_000, stop_when_done=False, engine="next_event")
        snap = str(tmp_path / "cross.snap")
        snapshot_system(system, snap)
        resumed = restore_system(snap)
        assert digest == report_digest(
            resumed.run(16_000, engine="cycle")
        )


class TestRunLoopCheckpointing:
    """``checkpoint_every`` in the run loop itself, both engines."""

    @pytest.mark.parametrize("engine", ["cycle", "next_event", "columnar"])
    def test_periodic_checkpoints_land_on_boundaries(self, engine, tmp_path):
        builder = _observed_resilient_builder(
            resilience=ResilienceConfig(
                checkpoint_every=4_000,
                checkpoint_dir=str(tmp_path / engine),
                checkpoint_keep=2,
            ),
        )
        system = builder.build()
        system.run(17_000, stop_when_done=False, engine=engine)
        res = system.resilience
        assert res.checkpoints_taken == 4
        snaps = sorted((tmp_path / engine).glob("checkpoint-*.snap"))
        assert len(snaps) == 2  # keep policy pruned the older two
        assert [read_snapshot_info(str(s))["cycle"] for s in snaps] == [
            12_000, 16_000,
        ]

    @pytest.mark.parametrize("engine", ["cycle", "next_event", "columnar"])
    def test_resume_from_periodic_checkpoint(self, engine, tmp_path):
        def build(tag):
            return _observed_resilient_builder(
                resilience=ResilienceConfig(
                    checkpoint_every=6_000,
                    checkpoint_dir=str(tmp_path / tag),
                ),
            ).build()

        straight = build(f"straight-{engine}")
        report_straight = straight.run(
            20_000, stop_when_done=False, engine=engine
        )

        interrupted = build(f"interrupted-{engine}")
        interrupted.run(9_000, stop_when_done=False, engine=engine)
        snap = interrupted.resilience.last_checkpoint_path
        assert read_snapshot_info(snap)["cycle"] == 6_000
        del interrupted

        resumed = restore_system(snap)
        report_resumed = resumed.run(
            14_000, stop_when_done=False, engine=engine
        )
        assert report_straight == report_resumed
        assert _obs_artifacts(straight) == _obs_artifacts(resumed)


# -- GA tuner checkpointing ------------------------------------------------


class TestTunerCheckpoint:
    def test_interrupted_tuning_resumes_identically(
        self, tmp_path, monkeypatch
    ):
        config = TunerConfig(
            epoch_cycles=400, profile_cycles=200,
            population_size=4, generations=3,
        )
        system, handles = build_tunable_system()
        straight = OnlineGaTuner(system, handles, config=config).tune()

        # Checkpoint after every generation, keeping a copy of each so
        # the "interruption after generation 1" state stays available.
        import repro.ga.online as online

        real_save = online.save_tuner
        per_generation = []

        def capturing_save(tuner, path):
            real_save(tuner, path)
            copy = f"{path}.gen{len(per_generation)}"
            shutil.copyfile(path, copy)
            per_generation.append(copy)

        monkeypatch.setattr(online, "save_tuner", capturing_save)
        system2, handles2 = build_tunable_system()
        OnlineGaTuner(system2, handles2, config=config).tune(
            checkpoint_path=str(tmp_path / "tuner.snap")
        )
        monkeypatch.undo()
        assert len(per_generation) >= 4  # 3 generations + the final save

        resumed_tuner = resume_tuner(per_generation[0])
        resumed = resumed_tuner.tune()
        assert resumed.best_genome == straight.best_genome
        assert resumed.best_fitness == straight.best_fitness
        assert resumed.fitness_history == straight.fitness_history

    def test_resume_tuner_rejects_system_snapshot(self, tmp_path):
        system = _observed_resilient_builder().build()
        snap = str(tmp_path / "sys.snap")
        snapshot_system(system, snap)
        with pytest.raises(SnapshotError, match="system"):
            resume_tuner(snap)


# -- randomized sweep ------------------------------------------------------


TRACE_NAMES = ["gcc", "astar", "h264ref", "libquantum", "apache", "sjeng"]


def _random_builder(seed):
    def build():
        rng = random.Random(seed)
        builder = SystemBuilder(seed=seed)
        builder.with_scheduler(rng.choice(["frfcfs", "priority", "tp"]))
        if rng.random() < 0.3:
            builder.with_write_queue()
        for index in range(rng.randint(1, 3)):
            name = rng.choice(TRACE_NAMES)
            style = rng.choice(["none", "reqc", "respc", "bdc", "epoch"])
            jitter = rng.random() < 0.5
            config = uniform_config(SPEC, rng.randint(1, 4))
            builder.add_core(
                make_trace(name, 200, seed=seed + index),
                request_shaping=(
                    RequestShapingPlan(config, jitter=jitter)
                    if style in ("reqc", "bdc") else None
                ),
                response_shaping=(
                    ResponseShapingPlan(config, jitter=jitter)
                    if style in ("respc", "bdc") else None
                ),
                epoch_shaping=(
                    EpochShapingPlan() if style == "epoch" else None
                ),
            )
        builder.with_observability(
            trace=True, sample_interval=1024,
            monitor=True, monitor_interval=2048,
        )
        return builder

    return build


@pytest.mark.slow
@pytest.mark.parametrize("engine", ["cycle", "next_event", "columnar"])
@pytest.mark.parametrize("seed", range(8))
def test_randomized_resume_bit_identical(seed, engine, tmp_path):
    cut = random.Random(seed ^ 0x5EED).randrange(2_000, 28_000)
    _assert_resume_identical(
        _random_builder(seed), cut, 30_000, engine, tmp_path
    )

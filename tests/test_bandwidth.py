"""Tests for bandwidth accounting utilities."""

import pytest

from repro.common.errors import ConfigurationError
from repro.memctrl.transaction import MemoryTransaction, TransactionType
from repro.sim.bandwidth import (
    bandwidth_series,
    burstiness_index,
    fake_traffic_fraction,
    per_core_bandwidth,
    utilization,
)


def grant(cycle, port, fake=False):
    txn = MemoryTransaction(
        core_id=port, address=0,
        kind=TransactionType.FAKE_READ if fake else TransactionType.READ,
        created_cycle=cycle,
    )
    return (cycle, port, txn)


TRACE = [grant(0, 0), grant(5, 1), grant(15, 0), grant(25, 0, fake=True)]


class TestBandwidthSeries:
    def test_windows(self):
        series = bandwidth_series(TRACE, window_cycles=10, total_cycles=30)
        assert list(series) == [128, 64, 64]

    def test_port_filter(self):
        series = bandwidth_series(TRACE, 10, 30, port=0)
        assert list(series) == [64, 64, 64]

    def test_line_bytes(self):
        series = bandwidth_series(TRACE, 10, 30, line_bytes=32)
        assert list(series) == [64, 32, 32]

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            bandwidth_series(TRACE, 0, 30)
        with pytest.raises(ConfigurationError):
            bandwidth_series(TRACE, 10, 0)


class TestPerCore:
    def test_average(self):
        bw = per_core_bandwidth(TRACE, total_cycles=64)
        assert bw[0] == pytest.approx(3 * 64 / 64)
        assert bw[1] == pytest.approx(64 / 64)

    def test_empty_trace(self):
        assert per_core_bandwidth([], 100) == {}


class TestFakeFraction:
    def test_overall(self):
        assert fake_traffic_fraction(TRACE) == pytest.approx(0.25)

    def test_per_port(self):
        assert fake_traffic_fraction(TRACE, port=0) == pytest.approx(1 / 3)
        assert fake_traffic_fraction(TRACE, port=1) == 0.0

    def test_empty(self):
        assert fake_traffic_fraction([]) == 0.0


class TestUtilization:
    def test_value(self):
        assert utilization(TRACE, total_cycles=8) == pytest.approx(0.5)

    def test_clamped_to_one(self):
        assert utilization(TRACE, total_cycles=2) == 1.0


class TestBurstiness:
    def test_constant_series_zero(self):
        assert burstiness_index([5, 5, 5, 5]) == 0.0

    def test_bursty_series_large(self):
        assert burstiness_index([0, 0, 0, 100]) > 1.0

    def test_empty_and_zero(self):
        assert burstiness_index([]) == 0.0
        assert burstiness_index([0, 0]) == 0.0

    def test_shaping_reduces_burstiness_end_to_end(self):
        """The whole point, measured with this index: shaped bus
        traffic has a much flatter envelope than intrinsic traffic."""
        from repro.analysis.experiments import staircase_config
        from repro.core.bins import BinSpec
        from repro.sim.system import RequestShapingPlan, SystemBuilder
        from repro.workloads.spec import make_trace

        spec = BinSpec(replenish_period=512)

        def run(shaped):
            builder = SystemBuilder(seed=8)
            plan = (
                RequestShapingPlan(
                    config=staircase_config(spec, 1 / 20), spec=spec
                )
                if shaped
                else None
            )
            builder.add_core(make_trace("apache", 2500, seed=8),
                             request_shaping=plan)
            system = builder.build()
            system.run(40_000, stop_when_done=False)
            series = bandwidth_series(
                system.request_link.grant_trace, 1024, system.current_cycle
            )
            return burstiness_index(series)

        assert run(shaped=True) < 0.5 * run(shaped=False)

"""Unit tests for channel-level buses: command bus and data bus."""

import pytest

from repro.common.errors import ProtocolError
from repro.dram.channel import Channel
from repro.dram.timing import DramTiming


@pytest.fixture
def channel(timing):
    return Channel(timing, ranks_per_channel=2, banks_per_rank=8)


class TestCommandBus:
    def test_one_command_per_cycle(self, channel):
        channel.activate(0, 0, row=1, cycle=0)
        # Second command in the same cycle must fail, even to another rank.
        assert not channel.command_bus_free(0)
        assert not channel.can_activate(1, 0, cycle=0)
        with pytest.raises(ProtocolError):
            channel.activate(1, 0, row=1, cycle=0)

    def test_free_next_cycle(self, channel):
        channel.activate(0, 0, row=1, cycle=0)
        assert channel.command_bus_free(1)
        channel.activate(1, 0, row=1, cycle=1)


class TestDataBus:
    def test_read_returns_burst_end(self, channel, timing):
        channel.activate(0, 0, row=1, cycle=0)
        end = channel.read(0, 0, row=1, cycle=timing.tRCD)
        assert end == timing.tRCD + timing.tCAS + timing.tBURST

    def test_write_returns_burst_end(self, channel, timing):
        channel.activate(0, 0, row=1, cycle=0)
        end = channel.write(0, 0, row=1, cycle=timing.tRCD)
        assert end == timing.tRCD + timing.tCWL + timing.tBURST

    def test_back_to_back_reads_separated_by_tccd(self, channel, timing):
        """tCCD >= tBURST keeps consecutive bursts from overlapping."""
        channel.activate(0, 0, row=1, cycle=0)
        t = timing.tRCD
        end1 = channel.read(0, 0, row=1, cycle=t)
        end2 = channel.read(0, 0, row=1, cycle=t + timing.tCCD)
        assert end2 - end1 == timing.tCCD

    def test_data_bus_conflict_blocks_second_read(self, channel, timing):
        """Two banks row-open: reads separated less than tBURST conflict."""
        slow = DramTiming(tCCD=1, burst_length=8)  # tBURST=4 > tCCD
        ch = Channel(slow, 1, 8)
        ch.activate(0, 0, row=1, cycle=0)
        ch.activate(0, 1, row=1, cycle=slow.tRRD)
        t = slow.tRRD + slow.tRCD
        ch.read(0, 0, row=1, cycle=t)
        # Next cycle the command bus is free but the data bus is not.
        assert not ch.data_bus_free_for(t + 1, 0, is_write=False)
        assert not ch.can_read(0, 1, row=1, cycle=t + 1)
        assert ch.can_read(0, 1, row=1, cycle=t + slow.tBURST)

    def test_rank_switch_penalty(self, channel, timing):
        """Bursts from different ranks need an extra tRTRS gap."""
        channel.activate(0, 0, row=1, cycle=0)
        channel.activate(1, 0, row=1, cycle=timing.tRRD)
        t = timing.tRRD + timing.tRCD
        channel.read(0, 0, row=1, cycle=t)
        same_rank_ok = t + timing.tCCD
        # Same-rank read would be fine at tCCD; other-rank needs tRTRS more.
        assert not channel.can_read(1, 0, row=1, cycle=same_rank_ok)
        assert channel.can_read(1, 0, row=1,
                                cycle=same_rank_ok + timing.tRTRS)

    def test_busy_cycles_accumulate(self, channel, timing):
        channel.activate(0, 0, row=1, cycle=0)
        channel.read(0, 0, row=1, cycle=timing.tRCD)
        channel.read(0, 0, row=1, cycle=timing.tRCD + timing.tCCD)
        assert channel.data_bus_busy_cycles == 2 * timing.tBURST


class TestRefreshOnChannel:
    def test_refresh_uses_command_bus(self, channel):
        channel.refresh(0, cycle=0)
        assert not channel.command_bus_free(0)

    def test_can_refresh_requires_quiet_rank(self, channel, timing):
        channel.activate(0, 0, row=1, cycle=0)
        assert not channel.can_refresh(0, cycle=5)

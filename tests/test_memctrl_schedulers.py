"""Unit tests for the scheduling policies.

These drive schedulers directly against a DRAM model, checking both
performance behaviour (FR-FCFS row-hit preference) and the security
invariants of the baselines (TP turn isolation, FS constant service).
"""

import pytest

from repro.common.errors import ConfigurationError
from repro.dram.address import AddressMapping
from repro.dram.commands import CommandType, DramCommand
from repro.memctrl.queue import TransactionQueue
from repro.memctrl.schedulers import (
    FixedServiceScheduler,
    FrFcfsScheduler,
    PriorityFrFcfsScheduler,
    TemporalPartitioningScheduler,
)
from repro.memctrl.transaction import MemoryTransaction, TransactionType


@pytest.fixture
def mapping(organization):
    return AddressMapping(organization)


def make_txn(mapping, core=0, address=0, write=False):
    txn = MemoryTransaction(
        core_id=core,
        address=address,
        kind=TransactionType.WRITE if write else TransactionType.READ,
        created_cycle=0,
    )
    txn.decoded = mapping.decode(address)
    return txn


def open_row(dram, decoded, cycle=0):
    dram.issue(DramCommand(CommandType.ACTIVATE, decoded), cycle)


class TestFrFcfs:
    def test_empty_queue_returns_none(self, dram):
        q = TransactionQueue()
        assert FrFcfsScheduler().select(q, dram, 100) is None

    def test_prefers_row_hit_over_older_miss(self, dram, mapping, timing):
        q = TransactionQueue()
        # Older transaction: bank 0 (closed). Younger: row hit on bank 1.
        miss = make_txn(mapping, core=0, address=0)
        hit_addr = 8192  # bank 1 in the default mapping
        hit = make_txn(mapping, core=1, address=hit_addr)
        open_row(dram, hit.decoded, 0)
        q.push(miss)
        q.push(hit)
        picked = FrFcfsScheduler().select(q, dram, timing.tRCD)
        assert picked is hit

    def test_oldest_wins_among_equals(self, dram, mapping):
        q = TransactionQueue()
        a = make_txn(mapping, core=0, address=0)
        b = make_txn(mapping, core=1, address=1 << 20)
        q.push(a)
        q.push(b)
        assert FrFcfsScheduler().select(q, dram, 0) is a

    def test_skips_unready_transactions(self, dram, mapping, timing):
        """A row conflict whose precharge is illegal is passed over."""
        q = TransactionQueue()
        base = make_txn(mapping, address=0)
        open_row(dram, base.decoded, 0)  # bank 0 open, tRAS running
        conflict_addr = 8192 * 8  # same bank, next row
        conflict = make_txn(mapping, core=0, address=conflict_addr)
        other = make_txn(mapping, core=1, address=8192)  # bank 1, closed
        q.push(conflict)
        q.push(other)
        # At tRRD the rank allows a new ACTIVATE (bank 1), but the
        # precharge of bank 0 still violates tRAS — so the younger
        # transaction must be chosen over the older conflicting one.
        assert timing.tRRD < timing.tRAS
        picked = FrFcfsScheduler().select(q, dram, timing.tRRD)
        assert picked is other


class TestPriorityFrFcfs:
    def test_boost_wins_over_age(self, dram, mapping):
        sched = PriorityFrFcfsScheduler(num_cores=2)
        q = TransactionQueue()
        old = make_txn(mapping, core=0, address=0)
        boosted = make_txn(mapping, core=1, address=1 << 22)
        q.push(old)
        q.push(boosted)
        sched.add_boost(1, 2)
        assert sched.select(q, dram, 0) is boosted

    def test_boost_consumed_on_issue(self, dram, mapping):
        sched = PriorityFrFcfsScheduler(num_cores=2)
        sched.add_boost(1, 1)
        txn = make_txn(mapping, core=1)
        sched.on_issue(txn, 0)
        assert sched.boost_of(1) == 0

    def test_exhausted_boost_reverts_to_frfcfs(self, dram, mapping):
        sched = PriorityFrFcfsScheduler(num_cores=2)
        q = TransactionQueue()
        old = make_txn(mapping, core=0, address=0)
        other = make_txn(mapping, core=1, address=1 << 22)
        q.push(old)
        q.push(other)
        assert sched.select(q, dram, 0) is old

    def test_exclusive_mode_always_wins(self, dram, mapping):
        sched = PriorityFrFcfsScheduler(num_cores=2)
        sched.set_exclusive(1)
        q = TransactionQueue()
        old = make_txn(mapping, core=0, address=0)
        exclusive = make_txn(mapping, core=1, address=1 << 22)
        q.push(old)
        q.push(exclusive)
        assert sched.select(q, dram, 0) is exclusive

    def test_exclusive_idle_lets_others_run(self, dram, mapping):
        """No deadlock during profiling when the exclusive core idles."""
        sched = PriorityFrFcfsScheduler(num_cores=2)
        sched.set_exclusive(1)
        q = TransactionQueue()
        other = make_txn(mapping, core=0, address=0)
        q.push(other)
        assert sched.select(q, dram, 0) is other

    def test_exclusive_cleared(self, dram, mapping):
        sched = PriorityFrFcfsScheduler(num_cores=2)
        sched.set_exclusive(1)
        sched.set_exclusive(None)
        assert sched.exclusive_core is None

    def test_rejects_unknown_core(self):
        sched = PriorityFrFcfsScheduler(num_cores=2)
        with pytest.raises(ConfigurationError):
            sched.add_boost(5, 1)
        with pytest.raises(ConfigurationError):
            sched.set_exclusive(9)

    def test_rejects_negative_boost(self):
        sched = PriorityFrFcfsScheduler(num_cores=2)
        with pytest.raises(ConfigurationError):
            sched.add_boost(0, -1)


class TestTemporalPartitioning:
    def test_turn_rotation(self, dram):
        sched = TemporalPartitioningScheduler([0, 1, 2, 3], turn_length=100)
        assert sched.current_owner(0) == 0
        assert sched.current_owner(100) == 1
        assert sched.current_owner(399) == 3
        assert sched.current_owner(400) == 0

    def test_non_owner_never_selected(self, dram, mapping):
        """The TP security invariant: cross-domain isolation in a turn."""
        sched = TemporalPartitioningScheduler([0, 1], turn_length=200)
        q = TransactionQueue()
        q.push(make_txn(mapping, core=1, address=0))  # domain 1
        # Cycle 10 is inside domain 0's turn: nothing may be selected.
        assert sched.select(q, dram, 10) is None

    def test_owner_selected_in_its_turn(self, dram, mapping):
        sched = TemporalPartitioningScheduler([0, 1], turn_length=200)
        q = TransactionQueue()
        txn = make_txn(mapping, core=1, address=0)
        q.push(txn)
        assert sched.select(q, dram, 210) is txn

    def test_dead_time_blocks_turn_end(self, dram, mapping, timing):
        sched = TemporalPartitioningScheduler([0, 1], turn_length=200)
        q = TransactionQueue()
        q.push(make_txn(mapping, core=0, address=0))
        dead = timing.row_conflict_latency()
        assert sched.select(q, dram, 200 - dead) is None

    def test_explicit_dead_time(self, dram, mapping):
        sched = TemporalPartitioningScheduler(
            [0, 1], turn_length=200, dead_time=50
        )
        q = TransactionQueue()
        txn = make_txn(mapping, core=0, address=0)
        q.push(txn)
        assert sched.select(q, dram, 149) is txn
        assert sched.select(q, dram, 151) is None

    def test_shared_domain_cores_share_turns(self, dram, mapping):
        """Cores mapped to one security domain are scheduled together."""
        sched = TemporalPartitioningScheduler([0, 0, 1, 1], turn_length=100)
        assert sched.num_domains == 2
        q = TransactionQueue()
        txn = make_txn(mapping, core=1, address=0)
        q.push(txn)
        assert sched.select(q, dram, 10) is txn  # domain 0 owns turn 0

    def test_rejects_dead_time_longer_than_turn(self):
        with pytest.raises(ConfigurationError):
            TemporalPartitioningScheduler([0, 1], turn_length=50, dead_time=60)

    def test_rejects_empty_domains(self):
        with pytest.raises(ConfigurationError):
            TemporalPartitioningScheduler([])


class TestFixedService:
    def test_no_service_before_first_slot(self, dram, mapping):
        sched = FixedServiceScheduler(num_cores=2, interval=50)
        q = TransactionQueue()
        q.push(make_txn(mapping, core=0, address=0))
        assert sched.select(q, dram, 0) is None
        assert sched.next_slot_of(0) == 50

    def test_service_at_slot(self, dram, mapping):
        sched = FixedServiceScheduler(num_cores=2, interval=50)
        q = TransactionQueue()
        txn = make_txn(mapping, core=0, address=0)
        q.push(txn)
        assert sched.select(q, dram, 50) is txn

    def test_issue_advances_slot(self, dram, mapping):
        """FS security invariant: observable service rate <= 1/interval."""
        sched = FixedServiceScheduler(num_cores=2, interval=50)
        txn = make_txn(mapping, core=0)
        sched.on_issue(txn, 60)
        assert sched.next_slot_of(0) == 110

    def test_per_core_slots_independent(self, dram, mapping):
        sched = FixedServiceScheduler(num_cores=2, interval=50)
        sched.on_issue(make_txn(mapping, core=0), 60)
        q = TransactionQueue()
        other = make_txn(mapping, core=1, address=1 << 22)
        q.push(other)
        assert sched.select(q, dram, 100) is other

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            FixedServiceScheduler(num_cores=0)
        with pytest.raises(ConfigurationError):
            FixedServiceScheduler(num_cores=2, interval=0)

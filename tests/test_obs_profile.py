"""The engine self-profiler's determinism quarantine.

The profiler may observe everything but perturb nothing: with
``profile=True`` the reports, the obs event/sample/monitor streams and
the ``REPROSNAP`` snapshot bytes must stay bit-identical across the
``cycle``, ``next_event`` and ``columnar`` engines — and identical to
a profiler-off run.  The unit half pins the accounting algebra
(closed-form stepped split, span bucketing, idempotent registry
export, pickle reset).
"""

import pickle

from repro.core.bins import BinSpec, uniform_config
from repro.obs import MetricsRegistry
from repro.obs.profile import SKIP_SPAN_EDGES, EngineProfiler
from repro.resilience.snapshot import snapshot_system
from repro.sim.system import (
    RequestShapingPlan,
    ResponseShapingPlan,
    SystemBuilder,
)
from repro.workloads import make_trace

SPEC = BinSpec()
ENGINES = ("cycle", "next_event", "columnar")


def _builder(profile=True):
    config = uniform_config(SPEC, 2)
    builder = SystemBuilder(seed=7)
    builder.add_core(
        make_trace("gcc", 250, seed=7),
        request_shaping=RequestShapingPlan(config),
        response_shaping=ResponseShapingPlan(config),
    )
    builder.add_core(make_trace("astar", 250, seed=8))
    builder.with_observability(
        trace=True,
        sample_interval=1024,
        monitor=True,
        monitor_interval=2048,
        profile=profile,
    )
    return builder


class TestQuarantine:
    def test_reports_and_streams_identical_across_engines(self):
        systems = {}
        reports = {}
        for engine in ENGINES:
            system = _builder().build()
            reports[engine] = system.run(25_000, engine=engine)
            systems[engine] = system
        baseline = systems["cycle"].observability
        assert baseline.profiler is not None
        for engine in ENGINES[1:]:
            assert reports["cycle"] == reports[engine]
            obs = systems[engine].observability
            assert baseline.tracer.events == obs.tracer.events
            assert baseline.sampler.samples == obs.sampler.samples
            assert baseline.monitor.history == obs.monitor.history
            # The profiler itself worked: it saw every simulated cycle.
            assert obs.profiler.simulated_cycles == 25_000

    def test_profiler_off_report_unchanged(self):
        with_prof = _builder(profile=True).build().run(20_000)
        without = _builder(profile=False).build().run(20_000)
        assert with_prof == without

    def test_snapshot_bytes_identical_across_engines(self, tmp_path):
        from repro.memctrl import transaction

        # Transactions draw ids from a process-global counter; rebase
        # it per build so the three runs mint identical id sequences
        # (in production each engine run is its own process).
        base = transaction.txn_id_watermark()
        blobs = {}
        try:
            for engine in ENGINES:
                transaction._next_txn_id = base
                system = _builder().build()
                system.run(20_000, engine=engine, stop_when_done=False)
                path = tmp_path / f"{engine}.snap"
                snapshot_system(system, str(path))
                blobs[engine] = path.read_bytes()
        finally:
            transaction.advance_txn_id_watermark(base + 1_000_000)
        assert blobs["cycle"] == blobs["next_event"] == blobs["columnar"]

    def test_registry_untouched_without_export(self):
        system = _builder().build()
        system.run(20_000, engine="columnar", stop_when_done=False)
        obs = system.observability
        assert obs.profiler.station_ticks  # it profiled...
        assert not any(
            name.startswith("profiler.") for name in obs.metrics.names()
        )  # ...without touching the registry


class TestAccounting:
    def test_closed_form_stepped_split(self):
        prof = EngineProfiler()
        prof.begin_run("next_event", 100)
        prof.record_skip(40)
        prof.record_skip(10)
        prof.end_run(200)
        assert prof.simulated_cycles == 100
        assert prof.skipped_cycles == 50
        assert prof.stepped_cycles == 50
        assert prof.skip_count == 2

    def test_span_bucketing_includes_overflow(self):
        prof = EngineProfiler()
        for span in (1, 2, 3, 100_000):
            prof.record_skip(span)
        counts = prof.skip_span_counts
        assert counts[SKIP_SPAN_EDGES.index(1)] == 1
        assert counts[SKIP_SPAN_EDGES.index(2)] == 1
        assert counts[SKIP_SPAN_EDGES.index(4)] == 1
        assert counts[-1] == 1  # 100_000 > 65536 overflows
        assert prof.record_skip(0) is None
        assert prof.skip_count == 4

    def test_rollup_shape_and_station_order(self):
        prof = EngineProfiler()
        prof.begin_run("columnar", 0)
        prof.record_station("memctrl", ticks=30)
        prof.record_station("core0", ticks=60, skips=5)
        prof.record_station("core1", ticks=10)
        prof.record_skip(8)
        prof.end_run(100)
        doc = prof.rollup()
        assert doc["cycles"] == {
            "simulated": 100, "stepped": 92, "skipped": 8,
        }
        assert [row["station"] for row in doc["stations"]] == [
            "core0", "memctrl", "core1",
        ]
        assert doc["stations"][0]["share"] == 0.6
        assert "wall" not in doc  # quarantined unless asked for
        assert doc["skip_spans"]["sum"] == 8
        assert prof.rollup(include_wall=True)["wall"]["ns"] >= 0

    def test_export_is_idempotent(self):
        prof = EngineProfiler()
        prof.begin_run("columnar", 0)
        prof.record_station("core0", ticks=4)
        prof.record_skip(16)
        prof.end_run(64)
        registry = MetricsRegistry()
        prof.export_to(registry)
        once = {n: registry._instruments[n] for n in registry.names()}
        simulated = registry.counter("profiler.cycles.simulated").value
        prof.export_to(registry)  # no new activity: nothing changes
        assert registry.counter("profiler.cycles.simulated").value == (
            simulated
        )
        assert registry.histogram(
            "profiler.skip_span", SKIP_SPAN_EDGES
        ).total == 1
        assert set(registry.names()) == set(once)

    def test_export_advances_by_delta(self):
        prof = EngineProfiler()
        registry = MetricsRegistry()
        prof.begin_run("cycle", 0)
        prof.end_run(10)
        prof.export_to(registry)
        prof.begin_run("cycle", 10)
        prof.end_run(30)
        prof.export_to(registry)
        assert registry.counter("profiler.cycles.simulated").value == 30
        assert registry.counter("profiler.runs").value == 2

    def test_pickle_resets_counters(self):
        prof = EngineProfiler()
        prof.begin_run("cycle", 0)
        prof.end_run(500)
        clone = pickle.loads(pickle.dumps(prof))
        assert clone.enabled is True
        assert clone.simulated_cycles == 0
        assert clone.wall_ns == 0
        disabled = pickle.loads(pickle.dumps(EngineProfiler(enabled=False)))
        assert disabled.enabled is False

"""Fault-injection harness: every adversity ends typed or flagged.

The contract under test (ISSUE acceptance, docs/resilience.md): each
injected fault class ends in a **typed error** or a **monitor-flagged
degraded mode** — never a silent shaping violation — and fault runs
stay bit-identical across all three execution engines (cycle,
next_event, columnar).
"""

import pytest

from repro.common.errors import ConfigurationError, QueueOverflowError
from repro.common.rng import DeterministicRng
from repro.memctrl.queue import TransactionQueue
from repro.memctrl.transaction import MemoryTransaction, TransactionType
from repro.memctrl.write_queue import WriteQueue, WriteQueuePolicy
from repro.resilience import (
    EpochBoundaryStress,
    FaultInjector,
    LinkStall,
    QueueSaturation,
    TrafficBurst,
    run_scenario,
    scenario_names,
)

# -- canned scenarios ------------------------------------------------------


class TestScenarios:
    def test_names(self):
        assert scenario_names() == [
            "degrade", "epoch-stress", "flood", "livelock",
            "malformed-trace", "saturate",
        ]

    def test_unknown_scenario(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            run_scenario("meteor-strike")

    def test_livelock_is_caught_typed(self, tmp_path):
        dump_path = str(tmp_path / "stall.json")
        result = run_scenario("livelock", cycles=20_000, dump_path=dump_path)
        assert result["outcome"] == "typed_error"
        assert result["error"] == "WatchdogError"
        assert result["dump_path"] == dump_path
        assert result["dump"]["faults"]["stalls"]

    def test_flood_is_flagged_by_monitor(self):
        result = run_scenario("flood")
        assert result["outcome"] == "flagged_violation"
        assert result["injected"] == 400
        assert result["violations"]

    def test_saturation_respects_queue_bound(self):
        result = run_scenario("saturate")
        assert result["outcome"] in ("completed", "typed_error")
        if result["outcome"] == "completed":
            assert result["injected"] == 300
            assert result["bound_held"] is True
            assert result["peak_queue_depth"] <= result["queue_capacity"]

    def test_jitter_budget_exhaustion_degrades_flagged(self):
        result = run_scenario("degrade", cycles=20_000)
        assert result["outcome"] == "degraded"
        assert result["degradations"]
        first = result["degradations"][0]
        assert first["reason"] == "jitter_budget_exhausted"
        assert first["direction"] in ("request", "response")

    def test_epoch_stress_survives(self):
        result = run_scenario("epoch-stress")
        assert result["outcome"] == "completed"
        assert result["injected"] > 0
        assert result["rate_changes"] > 0

    def test_malformed_trace_fails_typed_with_location(self):
        result = run_scenario("malformed-trace")
        assert result["outcome"] == "typed_error"
        assert result["error"] == "TraceFormatError"
        assert result["line"] == 3
        assert result["source"]

    @pytest.mark.parametrize(
        "name", ["livelock", "flood", "degrade", "epoch-stress"]
    )
    def test_engine_equivalence(self, name):
        """Fault runs are deterministic and engine-invariant end to end."""
        cycles = 20_000
        slow = run_scenario(name, cycles=cycles, engine="cycle")
        for engine in ("next_event", "columnar"):
            fast = run_scenario(name, cycles=cycles, engine=engine)
            assert slow == fast, f"engine={engine} diverged on {name}"


# -- fault spec validation -------------------------------------------------


class TestSpecValidation:
    def test_burst_counts_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            TrafficBurst(count=0)
        with pytest.raises(ConfigurationError):
            TrafficBurst(per_cycle=-1)

    def test_saturation_counts_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            QueueSaturation(count=0)

    def test_stall_duration_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            LinkStall(duration=0)
        assert LinkStall(duration=None).end_cycle is None
        assert LinkStall(start_cycle=5, duration=3).end_cycle == 8

    def test_epoch_stress_fields_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            EpochBoundaryStress(epochs=0)
        with pytest.raises(ConfigurationError):
            EpochBoundaryStress(lead=0)

    def test_epoch_stress_requires_epoch_shaper(self):
        from repro.resilience import ResilienceConfig
        from repro.sim.system import SystemBuilder
        from repro.workloads import make_trace

        builder = SystemBuilder(seed=2)
        builder.add_core(make_trace("gcc", 100, seed=2))  # no epoch shaping
        builder.with_resilience(
            ResilienceConfig(faults=(EpochBoundaryStress(core_id=0),))
        )
        with pytest.raises(ConfigurationError, match="EpochRateShaper"):
            builder.build().run(1_000)


class TestInjectorUnit:
    def _injector(self, *specs):
        return FaultInjector(specs, DeterministicRng(3))

    def test_link_stall_windows(self):
        injector = self._injector(LinkStall(start_cycle=10, duration=5))
        assert not injector.request_link_stalled(9)
        assert injector.request_link_stalled(10)
        assert injector.request_link_stalled(14)
        assert not injector.request_link_stalled(15)

    def test_next_event_pins_while_active(self):
        injector = self._injector(
            TrafficBurst(start_cycle=100, count=4, per_cycle=2)
        )
        # Before the burst: the start cycle is the next event...
        assert injector.next_event_cycle(0) == 100
        # ...during it: pinned to per-cycle stepping.
        assert injector.next_event_cycle(100) == 100
        assert injector.next_event_cycle(150) == 150

    def test_next_event_none_when_exhausted(self):
        injector = self._injector(
            TrafficBurst(start_cycle=0, count=1, per_cycle=1)
        )
        injector._bursts[0].remaining = 0
        assert injector.next_event_cycle(5) is None

    def test_stall_edges_are_events(self):
        injector = self._injector(LinkStall(start_cycle=10, duration=5))
        assert injector.next_event_cycle(0) == 10
        assert injector.next_event_cycle(10) == 10  # pinned while active
        assert injector.next_event_cycle(14) == 14
        assert injector.next_event_cycle(20) is None

    def test_stats_shape(self):
        injector = self._injector(LinkStall(start_cycle=1))
        stats = injector.stats()
        assert stats["specs"] == 1
        assert stats["stalls"] == [{"start_cycle": 1, "duration": None}]


# -- explicit queue-overflow semantics (satellite 2) -----------------------


def _txn(core_id=0, address=0x40, kind=TransactionType.FAKE_READ):
    return MemoryTransaction(
        core_id=core_id, address=address, kind=kind, created_cycle=0,
    )


class TestQueueOverflow:
    def test_transaction_queue_bound_is_loud(self):
        queue = TransactionQueue(capacity=2)
        queue.push(_txn())
        queue.push(_txn())
        assert queue.is_full
        with pytest.raises(QueueOverflowError) as excinfo:
            queue.push(_txn())
        assert excinfo.value.capacity == 2
        assert excinfo.value.depth == 2
        assert "backpressure" in str(excinfo.value)
        assert len(queue) == 2  # the failed push did not mutate state

    def test_write_queue_bound_is_loud(self):
        queue = WriteQueue(
            WriteQueuePolicy(capacity=2, low_watermark=0, high_watermark=1)
        )
        write = TransactionType.WRITE
        queue.push(_txn(address=0x40, kind=write))
        queue.push(_txn(address=0x80, kind=write))
        with pytest.raises(QueueOverflowError) as excinfo:
            queue.push(_txn(address=0xC0, kind=write))
        assert excinfo.value.capacity == 2
        assert excinfo.value.depth == 2

    def test_overflow_is_protocol_error(self):
        from repro.common.errors import ProtocolError

        assert issubclass(QueueOverflowError, ProtocolError)

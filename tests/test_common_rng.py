"""Unit tests for the deterministic RNG."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.rng import DeterministicRng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(42)
        b = DeterministicRng(42)
        assert [a.randint(0, 100) for _ in range(50)] == [
            b.randint(0, 100) for _ in range(50)
        ]

    def test_different_seeds_diverge(self):
        a = DeterministicRng(1)
        b = DeterministicRng(2)
        assert [a.randint(0, 10**9) for _ in range(10)] != [
            b.randint(0, 10**9) for _ in range(10)
        ]

    def test_fork_is_deterministic(self):
        a = DeterministicRng(7).fork(3)
        b = DeterministicRng(7).fork(3)
        assert a.random() == b.random()

    def test_fork_independent_of_parent_consumption(self):
        parent = DeterministicRng(7)
        child_before = parent.fork(5)
        parent.randint(0, 100)  # consume from parent
        child_after = DeterministicRng(7).fork(5)
        assert child_before.random() == child_after.random()

    def test_forks_with_different_salts_diverge(self):
        parent = DeterministicRng(7)
        assert parent.fork(1).random() != parent.fork(2).random()

    def test_seed_property(self):
        assert DeterministicRng(99).seed == 99


class TestDraws:
    def test_randint_bounds(self):
        rng = DeterministicRng(0)
        draws = [rng.randint(3, 9) for _ in range(200)]
        assert all(3 <= d <= 9 for d in draws)
        assert min(draws) == 3 and max(draws) == 9

    def test_random_in_unit_interval(self):
        rng = DeterministicRng(0)
        assert all(0.0 <= rng.random() < 1.0 for _ in range(100))

    def test_choice_returns_member(self):
        rng = DeterministicRng(0)
        seq = ["a", "b", "c"]
        assert all(rng.choice(seq) in seq for _ in range(30))

    def test_shuffle_preserves_elements(self):
        rng = DeterministicRng(0)
        seq = list(range(30))
        rng.shuffle(seq)
        assert sorted(seq) == list(range(30))

    def test_sample_distinct(self):
        rng = DeterministicRng(0)
        out = rng.sample(list(range(100)), 10)
        assert len(set(out)) == 10

    def test_numpy_generator_deterministic(self):
        a = DeterministicRng(5).numpy_generator().integers(0, 1000, 10)
        b = DeterministicRng(5).numpy_generator().integers(0, 1000, 10)
        assert list(a) == list(b)


class TestGeometric:
    def test_support_starts_at_one(self):
        rng = DeterministicRng(0)
        assert all(rng.geometric(0.5) >= 1 for _ in range(500))

    def test_p_one_always_one(self):
        rng = DeterministicRng(0)
        assert all(rng.geometric(1.0) == 1 for _ in range(20))

    def test_mean_close_to_inverse_p(self):
        rng = DeterministicRng(0)
        draws = [rng.geometric(0.1) for _ in range(20000)]
        mean = sum(draws) / len(draws)
        assert mean == pytest.approx(10.0, rel=0.1)

    @pytest.mark.parametrize("p", [0.0, -0.1, 1.5])
    def test_rejects_bad_probability(self, p):
        with pytest.raises(ValueError):
            DeterministicRng(0).geometric(p)

    @given(st.floats(min_value=0.01, max_value=1.0))
    def test_always_positive_integer(self, p):
        rng = DeterministicRng(123)
        value = rng.geometric(p)
        assert isinstance(value, int) and value >= 1

"""Tests for the two-VM interference covert channel (section II-A).

This channel rides on memory contention rather than bus visibility; in
this substrate it is much weaker than the bus channel (the open-loop
trace sender drifts under contention), so the assertions are on the
*correlation* between the key and the receiver's latency envelope —
exactly reproducible because the simulator is deterministic.
"""

import dataclasses

import pytest

from repro.analysis.experiments import (
    ExperimentDefaults,
    covert_interference_experiment,
)
from repro.common.errors import ConfigurationError

DEFAULTS = dataclasses.replace(
    ExperimentDefaults(), accesses=2000, cycles=20000
)
PARAMS = dict(key=0x2AAAAA, bits=24, defaults=DEFAULTS, pulse_cycles=4000)


class TestStructure:
    def test_returns_expected_fields(self):
        result = covert_interference_experiment(defense=None, **PARAMS)
        assert set(result) == {
            "key_bits", "window_mean_latency", "decoded_bits",
            "bit_error_rate", "latency_key_correlation",
            "receiver_probes",
        }
        assert len(result["decoded_bits"]) == 24
        assert result["receiver_probes"] > 100

    def test_rejects_unknown_defense(self):
        with pytest.raises(ConfigurationError):
            covert_interference_experiment(defense="tinfoil", **PARAMS)


class TestChannelAndDefenses:
    def test_open_channel_correlates(self):
        """Undefended, the receiver's latency tracks the key bits."""
        result = covert_interference_experiment(defense=None, **PARAMS)
        assert result["latency_key_correlation"] > 0.25

    def test_reqc_on_sender_closes_channel(self):
        open_corr = covert_interference_experiment(
            defense=None, **PARAMS
        )["latency_key_correlation"]
        defended = covert_interference_experiment(
            defense="reqc", **PARAMS
        )["latency_key_correlation"]
        assert abs(defended) < open_corr / 2

    def test_respc_on_receiver_weakens_channel(self):
        open_corr = covert_interference_experiment(
            defense=None, **PARAMS
        )["latency_key_correlation"]
        defended = covert_interference_experiment(
            defense="respc", **PARAMS
        )["latency_key_correlation"]
        assert abs(defended) < open_corr

    def test_defended_decoding_near_chance(self):
        for defense in ("reqc", "respc"):
            result = covert_interference_experiment(
                defense=defense, **PARAMS
            )
            assert result["bit_error_rate"] >= 0.3

"""Fixture-driven tests for the repro.lint checkers (RL001..RL004).

Each checker gets at least one true-positive and one clean fixture,
plus pragma- and baseline-suppression coverage and the config
machinery (per-path disables, severity overrides, the 3.9 TOML
fallback parser).
"""

import io
import json
import textwrap

import pytest

from repro.lint import LintConfig, Severity, lint_paths, lint_source
from repro.lint.baseline import BaselineFormatError, load_baseline
from repro.lint.config import _tiny_toml, config_from_table
from repro.lint.runner import run

CORE_PATH = "src/repro/core/mod.py"


def findings_for(code, path=CORE_PATH, select=None, config=None):
    return lint_source(textwrap.dedent(code), path, config, select=select)


def ids_of(findings):
    return [f.checker_id for f in findings]


# -- RL001 determinism -----------------------------------------------------


class TestRL001:
    def test_random_import_and_call_flagged(self):
        findings = findings_for(
            """
            import random

            def jitter():
                return random.random()
            """,
            select=["RL001"],
        )
        assert ids_of(findings) == ["RL001", "RL001"]
        assert findings[0].line == 2  # the import
        assert "random" in findings[0].message

    def test_numpy_random_alias_resolved(self):
        findings = findings_for(
            """
            import numpy as np

            def noise(n):
                return np.random.default_rng().random(n)
            """,
            select=["RL001"],
        )
        assert len(findings) == 1
        assert findings[0].key == "numpy.random.default_rng"
        assert findings[0].line == 5

    def test_wall_clock_flagged(self):
        findings = findings_for(
            """
            import time
            from datetime import datetime

            def stamp():
                return time.time(), datetime.now()
            """,
            select=["RL001"],
        )
        assert ids_of(findings) == ["RL001", "RL001"]
        assert {f.key for f in findings} == {
            "time.time", "datetime.datetime.now"
        }

    def test_seeded_rng_clean(self):
        findings = findings_for(
            """
            from repro.common.rng import DeterministicRng

            def jitter(rng: DeterministicRng):
                return rng.random() + rng.gauss(0.0, 1.0)
            """,
            select=["RL001"],
        )
        assert findings == []

    def test_allow_path_exempts_rng_module(self):
        findings = findings_for(
            """
            import random

            _r = random.Random(7)
            """,
            path="src/repro/common/rng.py",
            select=["RL001"],
        )
        assert findings == []


# -- RL002 integer cycle arithmetic ----------------------------------------


class TestRL002:
    def test_division_into_cycle_assignment(self):
        findings = findings_for(
            """
            def plan(base, period):
                release_cycle = base + period / 2
                return release_cycle
            """,
            select=["RL002"],
        )
        assert ids_of(findings) == ["RL002"]
        assert findings[0].line == 3
        assert "release_cycle" in findings[0].message

    def test_return_from_cycle_valued_function(self):
        findings = findings_for(
            """
            class Link:
                def next_event_cycle(self, cycle):
                    return cycle + self.period / 2
            """,
            select=["RL002"],
        )
        assert ids_of(findings) == ["RL002"]
        assert findings[0].key == "next_event_cycle"

    def test_tainted_local_reaching_comparison(self):
        findings = findings_for(
            """
            def choose(intervals, total, n, deadline):
                needed = total / n
                for iv in intervals:
                    if deadline <= needed:
                        return iv
                return None
            """,
            select=["RL002"],
        )
        assert ids_of(findings) == ["RL002"]
        assert "needed" in findings[0].message

    def test_float_kwarg_and_augmented_division(self):
        findings = findings_for(
            """
            def drive(shaper, deadline):
                shaper.submit(cycle=deadline / 2)
                deadline /= 4
            """,
            select=["RL002"],
        )
        assert len(findings) == 2

    def test_int_coercion_and_ratios_clean(self):
        findings = findings_for(
            """
            import math

            def stats(hits, total, a, b):
                ratio = hits / total
                mean_latency = hits / max(total, 1)
                release_cycle = int(a / b)
                start_cycle = math.ceil(a / b)
                span_cycles = a // b
                return ratio, mean_latency, release_cycle, start_cycle, span_cycles
            """,
            select=["RL002"],
        )
        assert findings == []

    def test_taint_cleared_by_integer_reassignment(self):
        findings = findings_for(
            """
            def ok(total, n, deadline):
                q = total / n
                q = total // n
                return deadline <= q
            """,
            select=["RL002"],
        )
        assert findings == []

    def test_out_of_package_path_ignored(self):
        findings = findings_for(
            """
            def plan(base):
                release_cycle = base / 2
                return release_cycle
            """,
            path="src/repro/analysis/mod.py",
            select=["RL002"],
        )
        assert findings == []


# -- RL003 next-event contract ---------------------------------------------


class TestRL003:
    TICK_ONLY = """
        class Widget:
            def tick(self, cycle):
                pass
        """

    def test_tick_without_next_event_flagged(self):
        findings = findings_for(
            self.TICK_ONLY, path="src/repro/noc/widget.py", select=["RL003"]
        )
        assert ids_of(findings) == ["RL003"]
        assert findings[0].key == "Widget"
        assert findings[0].line == 2

    def test_both_methods_clean(self):
        findings = findings_for(
            """
            class Widget:
                def tick(self, cycle):
                    pass

                def next_event_cycle(self, cycle):
                    return None
            """,
            path="src/repro/noc/widget.py",
            select=["RL003"],
        )
        assert findings == []

    def test_same_module_inheritance_satisfies(self):
        findings = findings_for(
            """
            class Base:
                def next_event_cycle(self, cycle):
                    return None

            class Widget(Base):
                def tick(self, cycle):
                    pass
            """,
            path="src/repro/noc/widget.py",
            select=["RL003"],
        )
        assert findings == []

    def test_config_exemption(self):
        config = config_from_table({"rl003": {"exempt": ["Widget"]}})
        findings = findings_for(
            self.TICK_ONLY,
            path="src/repro/noc/widget.py",
            select=["RL003"],
            config=config,
        )
        assert findings == []

    def test_unsimulated_package_ignored(self):
        findings = findings_for(
            self.TICK_ONLY, path="src/repro/analysis/widget.py",
            select=["RL003"],
        )
        assert findings == []


# -- RL004 mutable shared state --------------------------------------------


class TestRL004:
    def test_mutable_default_argument(self):
        findings = findings_for(
            """
            def record(event, trace=[]):
                trace.append(event)
                return trace
            """,
            select=["RL004"],
        )
        assert ids_of(findings) == ["RL004"]
        assert findings[0].key == "record"

    def test_keyword_only_mutable_default(self):
        findings = findings_for(
            """
            def record(event, *, cache={}):
                cache[event] = True
            """,
            select=["RL004"],
        )
        assert len(findings) == 1

    def test_class_level_mutable_literal(self):
        findings = findings_for(
            """
            class Core:
                pending = []

                def __init__(self):
                    self.cycle = 0
            """,
            select=["RL004"],
        )
        assert ids_of(findings) == ["RL004"]
        assert findings[0].key == "Core.pending"

    def test_clean_idioms(self):
        findings = findings_for(
            """
            from dataclasses import dataclass, field
            from typing import List, Tuple

            @dataclass
            class Config:
                taps: List[int] = field(default_factory=list)

            class Core:
                EDGES: Tuple[int, ...] = (1, 2, 4)

                def __init__(self, trace=None):
                    self.trace = list(trace or [])
            """,
            select=["RL004"],
        )
        assert findings == []


# -- RL005 bare print ------------------------------------------------------


class TestRL005:
    def test_bare_print_flagged(self):
        findings = findings_for(
            """
            def debug(state):
                print("queue:", state.queue)
            """,
            select=["RL005"],
        )
        assert ids_of(findings) == ["RL005"]
        assert "print" in findings[0].message

    def test_explicit_file_clean(self):
        findings = findings_for(
            """
            import sys

            def report(text, out=None):
                print(text, file=out or sys.stderr)
            """,
            select=["RL005"],
        )
        assert findings == []

    def test_main_module_exempt(self):
        findings = findings_for(
            """
            print("usage: ...")
            """,
            path="src/repro/lint/__main__.py",
            select=["RL005"],
        )
        assert findings == []

    def test_cli_allow_path_default(self):
        findings = findings_for(
            """
            print("table")
            """,
            path="src/repro/cli.py",
            select=["RL005"],
        )
        assert findings == []

    def test_allow_paths_configurable(self):
        config = config_from_table(
            {"rl005": {"allow-paths": ["repro/core/mod.py"]}}
        )
        findings = findings_for(
            """
            print("ok here")
            """,
            select=["RL005"],
            config=config,
        )
        assert findings == []

    def test_shadowed_print_not_flagged(self):
        # A local callable named print is not the builtin side effect
        # the rule targets — only bare Name calls without file= count,
        # and methods like logger.print are attribute calls anyway.
        findings = findings_for(
            """
            class Sink:
                def print(self, text):
                    return text

            def use(sink):
                return sink.print("x")
            """,
            select=["RL005"],
        )
        assert findings == []


# -- RL006 swallowed exceptions --------------------------------------------


class TestRL006:
    def test_bare_except_flagged(self):
        findings = findings_for(
            """
            def load(path):
                try:
                    return open(path).read()
                except:
                    return None
            """,
            select=["RL006"],
        )
        assert ids_of(findings) == ["RL006"]
        assert "bare except" in findings[0].message

    def test_bare_except_with_reraise_clean(self):
        findings = findings_for(
            """
            def load(path):
                try:
                    return open(path).read()
                except:
                    cleanup()
                    raise
            """,
            select=["RL006"],
        )
        assert findings == []

    def test_catch_all_pass_flagged(self):
        findings = findings_for(
            """
            def tick(component):
                try:
                    component.advance()
                except Exception:
                    pass
            """,
            select=["RL006"],
        )
        assert ids_of(findings) == ["RL006"]

    def test_base_exception_ellipsis_flagged(self):
        findings = findings_for(
            """
            def tick(component):
                try:
                    component.advance()
                except BaseException:
                    ...
            """,
            select=["RL006"],
        )
        assert ids_of(findings) == ["RL006"]

    def test_catch_all_in_tuple_flagged(self):
        findings = findings_for(
            """
            def drain(queue):
                for item in queue:
                    try:
                        item.flush()
                    except (ValueError, Exception):
                        continue
            """,
            select=["RL006"],
        )
        assert ids_of(findings) == ["RL006"]

    def test_narrow_typed_pass_allowed(self):
        # Naming the exception is the statement of intent the rule
        # wants; best-effort cleanup may legitimately ignore OSError.
        findings = findings_for(
            """
            import os

            def prune(path):
                try:
                    os.remove(path)
                except OSError:
                    pass
            """,
            select=["RL006"],
        )
        assert findings == []

    def test_catch_all_with_handling_body_allowed(self):
        findings = findings_for(
            """
            def guarded(fn, log):
                try:
                    return fn()
                except Exception as exc:
                    log.append(exc)
                    return None
            """,
            select=["RL006"],
        )
        assert findings == []

    def test_catch_all_wrap_and_reraise_allowed(self):
        findings = findings_for(
            """
            from repro.common.errors import SnapshotError

            def restore(blob):
                try:
                    return decode(blob)
                except Exception as exc:
                    raise SnapshotError(str(exc)) from exc
            """,
            select=["RL006"],
        )
        assert findings == []

    def test_allow_paths_configurable(self):
        config = config_from_table(
            {"rl006": {"allow-paths": ["repro/core/mod.py"]}}
        )
        findings = findings_for(
            """
            def load(path):
                try:
                    return open(path).read()
                except:
                    return None
            """,
            select=["RL006"],
            config=config,
        )
        assert findings == []


# -- suppression machinery -------------------------------------------------


class TestSuppression:
    def test_same_line_pragma(self):
        findings = findings_for(
            """
            import time

            def stamp():
                return time.time()  # repro-lint: disable=RL001
            """,
            select=["RL001"],
        )
        assert findings == []

    def test_next_line_pragma_and_all(self):
        findings = findings_for(
            """
            def plan(base):
                # repro-lint: disable-next-line=all
                release_cycle = base / 2
                return release_cycle
            """,
            select=["RL002"],
        )
        assert findings == []

    def test_pragma_only_suppresses_listed_checker(self):
        findings = findings_for(
            """
            def record(base, trace=[]):
                release_cycle = base / 2  # repro-lint: disable=RL001
                return release_cycle, trace
            """,
        )
        assert sorted(ids_of(findings)) == ["RL002", "RL004"]

    def test_baseline_suppression_and_unused_reporting(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "noc"
        pkg.mkdir(parents=True)
        (pkg / "widget.py").write_text(textwrap.dedent(self_code()))
        baseline_file = tmp_path / "lint-baseline.txt"
        baseline_file.write_text(
            "RL003 src/repro/noc/widget.py Widget -- legacy, migrated in #42\n"
            "RL003 src/repro/noc/gone.py Ghost -- stale entry\n"
        )
        config = LintConfig(project_root=str(tmp_path))
        baseline = load_baseline(str(baseline_file))
        result = lint_paths([str(tmp_path / "src")], config, baseline=baseline)
        assert result.findings == []
        assert result.baseline_suppressed == 1
        assert [e.key for e in result.unused_baseline] == ["Ghost"]

    def test_baseline_requires_justification(self, tmp_path):
        bad = tmp_path / "baseline.txt"
        bad.write_text("RL003 src/x.py Widget\n")
        with pytest.raises(BaselineFormatError):
            load_baseline(str(bad))


def self_code():
    return """
    class Widget:
        def tick(self, cycle):
            pass
    """


# -- config + runner machinery ---------------------------------------------


class TestConfigAndRunner:
    def test_disable_per_path(self):
        config = config_from_table(
            {"disable-per-path": {"repro/core/*": ["RL002"]}}
        )
        code = """
        def plan(base):
            release_cycle = base / 2
            return release_cycle
        """
        assert findings_for(code, config=config, select=["RL002"]) == []
        assert len(
            findings_for(
                code, path="src/repro/noc/mod.py", config=config,
                select=["RL002"],
            )
        ) == 1

    def test_severity_override_downgrades_exit(self, tmp_path):
        pkg = tmp_path / "src"
        pkg.mkdir()
        (pkg / "mod.py").write_text("def f(xs=[]):\n    return xs\n")
        config = config_from_table(
            {"severity": {"RL004": "warning"}}, project_root=str(tmp_path)
        )
        result = lint_paths([str(pkg)], config)
        assert len(result.findings) == 1
        assert result.findings[0].severity == Severity.WARNING
        assert result.exit_code == 0

    def test_bad_fixture_exits_nonzero_with_location(self, tmp_path):
        proj = tmp_path / "proj"
        pkg = proj / "src" / "repro" / "memctrl"
        pkg.mkdir(parents=True)
        (proj / "pyproject.toml").write_text("[tool.repro-lint]\n")
        bad = pkg / "bad.py"
        bad.write_text(
            "import random\n"
            "\n"
            "def pick(queue):\n"
            "    return random.choice(queue)\n"
        )
        out = io.StringIO()
        code = run(
            paths=[str(proj / "src")], output_format="json",
            no_baseline=True, out=out,
        )
        assert code == 1
        payload = json.loads(out.getvalue())
        locations = {
            (f["path"], f["line"], f["checker"])
            for f in payload["findings"]
        }
        assert ("src/repro/memctrl/bad.py", 1, "RL001") in locations
        assert ("src/repro/memctrl/bad.py", 4, "RL001") in locations

    def test_syntax_error_reported_not_crash(self):
        findings = findings_for("def broken(:\n    pass\n")
        assert ids_of(findings) == ["RL000"]

    def test_tiny_toml_matches_tomllib_on_repo_pyproject(self):
        tomllib = pytest.importorskip("tomllib")
        import pathlib

        raw = (
            pathlib.Path(__file__).parents[1] / "pyproject.toml"
        ).read_text()
        expected = tomllib.loads(raw)["tool"]["repro-lint"]
        assert _tiny_toml(raw)["tool"]["repro-lint"] == expected

"""Tests for the Fletcher'14 epoch-rate shaper (paper reference [14])."""

import math

import pytest

from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRng
from repro.core.epoch_shaper import (
    EpochRateController,
    EpochRateShaper,
    RateSet,
)
from repro.memctrl.transaction import MemoryTransaction, TransactionType
from repro.noc.link import SharedLink


class TestRateSet:
    def test_defaults(self):
        rs = RateSet()
        assert rs.num_rates == 6
        assert rs.bits_per_choice() == pytest.approx(math.log2(6))

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            RateSet(())

    def test_rejects_unsorted(self):
        with pytest.raises(ConfigurationError):
            RateSet((16, 8))

    def test_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            RateSet((8, 8, 16))

    def test_interval_for_demand_matches(self):
        rs = RateSet((8, 16, 32))
        # 100 accesses over 1600 cycles need interval <= 16.
        assert rs.interval_for_demand(100, 1600) == 16

    def test_interval_for_no_demand_is_slowest(self):
        assert RateSet((8, 16, 32)).interval_for_demand(0, 1000) == 32

    def test_interval_for_huge_demand_is_fastest(self):
        assert RateSet((8, 16, 32)).interval_for_demand(10_000, 1000) == 8


class TestController:
    def test_starts_at_slowest(self):
        c = EpochRateController(RateSet((8, 16, 32)), epoch_cycles=100)
        assert c.current_interval == 32

    def test_explicit_initial_interval(self):
        c = EpochRateController(RateSet((8, 16, 32)), epoch_cycles=100,
                                initial_interval=16)
        assert c.current_interval == 16

    def test_rejects_interval_outside_set(self):
        with pytest.raises(ConfigurationError):
            EpochRateController(RateSet((8, 16)), epoch_cycles=100,
                                initial_interval=10)

    def test_demand_drives_rate(self):
        c = EpochRateController(RateSet((8, 16, 32)), epoch_cycles=100)
        for _ in range(12):
            c.note_demand()  # needs interval <= 8.3
        assert c.maybe_advance_epoch(100)
        assert c.current_interval == 8
        assert c.rate_history == [(100, 8)]

    def test_no_boundary_no_change(self):
        c = EpochRateController(RateSet((8, 16, 32)), epoch_cycles=100)
        assert not c.maybe_advance_epoch(99)

    def test_feedback_pressure_steps_faster(self):
        c = EpochRateController(RateSet((8, 16, 32)), epoch_cycles=100)
        c.maybe_advance_with_feedback(100, pressure=True, idle=False)
        assert c.current_interval == 16

    def test_feedback_idle_steps_slower(self):
        c = EpochRateController(RateSet((8, 16, 32)), epoch_cycles=100,
                                initial_interval=8)
        c.maybe_advance_with_feedback(100, pressure=False, idle=True)
        assert c.current_interval == 16

    def test_feedback_clamps_at_extremes(self):
        c = EpochRateController(RateSet((8, 16)), epoch_cycles=100,
                                initial_interval=8)
        c.maybe_advance_with_feedback(100, pressure=True, idle=False)
        assert c.current_interval == 8
        c2 = EpochRateController(RateSet((8, 16)), epoch_cycles=100)
        c2.maybe_advance_with_feedback(100, pressure=False, idle=True)
        assert c2.current_interval == 16

    def test_epochs_elapsed(self):
        c = EpochRateController(RateSet((8, 16)), epoch_cycles=100)
        c.maybe_advance_epoch(350)
        assert c.epochs_elapsed == 3


def make_shaper(epoch_cycles=256, rates=None):
    link = SharedLink(num_ports=1, latency=1, port_capacity=64)
    shaper = EpochRateShaper(
        core_id=0, link=link, port=0, rng=DeterministicRng(5),
        rates=rates or RateSet((4, 8, 16)), epoch_cycles=epoch_cycles,
    )
    return shaper, link


def make_txn(cycle=0):
    return MemoryTransaction(core_id=0, address=0x4000,
                             kind=TransactionType.READ, created_cycle=cycle)


class TestEpochRateShaper:
    def test_periodic_releases(self):
        """Inside one epoch the observable stream is strictly periodic."""
        shaper, link = make_shaper(epoch_cycles=256)
        for cycle in range(250):
            shaper.tick(cycle)
        releases = sorted(g for g, _, _ in link.grant_trace)
        # All events come from link.tick; shaper injected periodically.
        gaps = {b - a for a, b in zip(releases, releases[1:])}
        assert not gaps  # nothing granted: link never ticked
        # Check injection periodicity directly via the shaped histogram.
        gaps = set(shaper.shaped_histogram.gaps)
        assert gaps == {16}  # initial (slowest) interval

    def test_fake_fills_idle_slots(self):
        shaper, _ = make_shaper()
        for cycle in range(200):
            shaper.tick(cycle)
        assert shaper.fake_sent > 0
        assert shaper.real_sent == 0

    def test_real_preferred_over_fake(self):
        shaper, link = make_shaper()
        txn = make_txn()
        shaper.submit(txn, 0)
        for cycle in range(40):
            shaper.tick(cycle)
        assert shaper.real_sent == 1
        assert txn.shaper_release_cycle is not None

    def test_backpressure_via_capacity(self):
        shaper, _ = make_shaper()
        for _ in range(32):
            shaper.submit(make_txn(), 0)
        assert not shaper.can_accept(0)

    def test_pressure_escalates_rate(self):
        shaper, _ = make_shaper(epoch_cycles=256)
        cycle = 0
        for cycle in range(1500):
            if shaper.can_accept(0) and cycle % 4 == 0:
                shaper.submit(make_txn(cycle), cycle)
            shaper.tick(cycle)
        # Demand of 1/4 cycles needs the fastest rate; the AIMD path
        # must have walked the interval down from 16 to 4.
        assert shaper.controller.current_interval == 4

    def test_leakage_bound_grows_with_epochs(self):
        shaper, _ = make_shaper(epoch_cycles=256)
        for cycle in range(1100):
            shaper.tick(cycle)
        expected_epochs = shaper.controller.epochs_elapsed
        assert shaper.leakage_bound_bits() == pytest.approx(
            expected_epochs * math.log2(3)
        )


class TestEpochShaperInSystem:
    def test_system_integration(self):
        from repro.sim import EpochShapingPlan, SystemBuilder
        from repro.workloads import make_trace

        builder = SystemBuilder(seed=3)
        builder.add_core(
            make_trace("apache", 1500),
            epoch_shaping=EpochShapingPlan(epoch_cycles=2048),
        )
        system = builder.build()
        report = system.run(20000, stop_when_done=False)
        path = system.request_paths[0]
        assert path.real_sent > 0
        assert path.fake_sent > 0
        assert report.core(0).retired_instructions > 0

    def test_exclusive_with_bin_shaping(self):
        from repro.core.bins import BinConfiguration
        from repro.sim import (
            EpochShapingPlan,
            RequestShapingPlan,
            SystemBuilder,
        )
        from repro.workloads import make_trace

        builder = SystemBuilder()
        with pytest.raises(ConfigurationError):
            builder.add_core(
                make_trace("gcc", 10),
                request_shaping=RequestShapingPlan(
                    config=BinConfiguration((1,) * 10)
                ),
                epoch_shaping=EpochShapingPlan(),
            )

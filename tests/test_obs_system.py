"""System-level observability wiring: builder, tracer, sampler, monitor.

These tests drive the full stack — cores, shapers, NoC, controller,
DRAM — through ``SystemBuilder.with_observability`` and check that the
events, time-series and monitor checkpoints come out of a real run,
and that carrying the observability stack never perturbs the
simulation itself.
"""

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.core.bins import BinSpec, uniform_config
from repro.obs import ObservabilityConfig
from repro.obs.tracer import NULL_TRACER
from repro.sim.system import (
    EpochShapingPlan,
    RequestShapingPlan,
    ResponseShapingPlan,
    SystemBuilder,
)
from repro.workloads import make_trace

SPEC = BinSpec()
CYCLES = 20_000


def _builder(epoch=False):
    config = uniform_config(SPEC, 2)
    builder = SystemBuilder(seed=11)
    builder.add_core(
        make_trace("gcc", 250, seed=11),
        request_shaping=None if epoch else RequestShapingPlan(config),
        response_shaping=None if epoch else ResponseShapingPlan(config),
        epoch_shaping=EpochShapingPlan() if epoch else None,
    )
    builder.add_core(make_trace("astar", 250, seed=12))
    return builder


def _observed(epoch=False, **obs_kwargs):
    system = _builder(epoch=epoch).with_observability(**obs_kwargs).build()
    report = system.run(CYCLES)
    return system, report


class TestDisabledByDefault:
    def test_no_observability_state_without_opt_in(self):
        system = _builder().build()
        assert system.observability is None
        assert system.request_link.tracer is NULL_TRACER
        assert system.controller.tracer is NULL_TRACER

    def test_report_bit_identical_with_obs_attached(self):
        baseline = _builder().build().run(CYCLES)
        _, observed = _observed(trace=True, sample_interval=1024,
                                monitor=True)
        assert observed == baseline

    def test_trace_off_system_emits_nothing(self):
        # sample-only config: components keep the NULL_TRACER.
        system, _ = _observed(sample_interval=1024)
        assert system.request_link.tracer is NULL_TRACER
        assert system.observability.tracer is NULL_TRACER


class TestTracing:
    def test_all_hardware_categories_observed(self):
        system, _ = _observed(trace=True)
        tracer = system.observability.tracer
        assert {"shaper", "memctrl", "dram", "noc"} <= set(tracer.counts)
        names = {e.name for e in tracer.events}
        assert "shaper.real_release" in names
        assert "shaper.replenish" in names
        assert "memctrl.enqueue" in names
        assert "memctrl.issue" in names
        assert "noc.grant" in names
        assert any(n.startswith("dram.") for n in names)

    def test_chrome_export_is_valid_and_complete(self):
        system, _ = _observed(trace=True)
        payload = json.loads(
            json.dumps(system.observability.tracer.to_chrome())
        )
        instants = [e for e in payload["traceEvents"] if e["ph"] == "i"]
        assert instants, "a shaped run must produce events"
        assert {e["cat"] for e in instants} >= {
            "shaper", "memctrl", "dram", "noc"
        }
        cycles = [e["ts"] for e in instants]
        assert all(isinstance(ts, int) and 0 <= ts < CYCLES
                   for ts in cycles)

    def test_category_filter_through_builder(self):
        system, _ = _observed(trace=True, trace_categories=("dram",))
        tracer = system.observability.tracer
        assert set(tracer.counts) == {"dram"}
        assert all(e.category == "dram" for e in tracer.events)

    def test_ring_bound_respected(self):
        system, _ = _observed(trace=True, trace_limit=64)
        tracer = system.observability.tracer
        assert len(tracer.events) == 64
        assert tracer.dropped == tracer.total_emitted - 64

    def test_fake_injection_attributed_to_shaped_core(self):
        system, report = _observed(trace=True)
        fakes = [e for e in system.observability.tracer.events
                 if e.name == "shaper.fake_inject"]
        assert fakes, "uniform shaping must inject fakes"
        assert {e.core_id for e in fakes} == {0}
        assert report.core(0).fake_requests_sent > 0

    def test_epoch_shaper_events(self):
        system, _ = _observed(epoch=True, trace=True)
        names = {e.name for e in system.observability.tracer.events}
        assert "shaper.epoch_boundary" in names


class TestSampling:
    def test_default_probe_set(self):
        system, _ = _observed(sample_interval=1024)
        sampler = system.observability.sampler
        assert "memctrl.queue_depth" in sampler.probe_names
        assert "core0.request_credits" in sampler.probe_names
        assert "core1.fake_fraction" in sampler.probe_names
        # Core 1 is unshaped: no credit register to probe.
        assert "core1.request_credits" not in sampler.probe_names

    def test_series_over_a_real_run(self):
        system, report = _observed(sample_interval=1024)
        sampler = system.observability.sampler
        series = sampler.series("noc.request_grants")
        assert [cycle for cycle, _ in series] == [
            1024 * (i + 1) for i in range(len(series))
        ]
        values = [value for _, value in series]
        assert values == sorted(values)  # cumulative counter
        assert values[-1] <= report.request_link_grants

    def test_sample_limit_bounds_history(self):
        system, _ = _observed(sample_interval=256, sample_limit=8)
        sampler = system.observability.sampler
        assert len(sampler.samples) == 8
        assert sampler.dropped > 0


class TestMonitoring:
    def test_shaped_streams_watched(self):
        system, _ = _observed(monitor=True, monitor_interval=2048)
        monitor = system.observability.monitor
        assert monitor.watched_count == 2  # core 0 request + response
        assert len(monitor.history) > 0
        latest = monitor.latest(0, "request")
        assert latest is not None
        assert latest.tvd_target is not None

    def test_conforming_request_stream_within_threshold(self):
        system, _ = _observed(monitor=True, monitor_interval=2048)
        latest = system.observability.monitor.latest(0, "request")
        # ReqC enforces the distribution by construction; by the end of
        # the run the shaped stream matches its target closely.
        assert latest.tvd_target < 0.25


class TestBuilderValidation:
    def test_config_and_kwargs_exclusive(self):
        config = ObservabilityConfig(trace=True)
        with pytest.raises(ConfigurationError):
            SystemBuilder().with_observability(config, trace=True)

    def test_config_object_accepted(self):
        system = (
            _builder()
            .with_observability(ObservabilityConfig(sample_interval=512))
            .build()
        )
        assert system.observability.sampler.interval == 512

    @pytest.mark.parametrize("kwargs", [
        {"trace_limit": 0},
        {"sample_interval": -1},
        {"noc_grant_trace_limit": 0},
        {"trace_categories": ("cache",)},
    ])
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ObservabilityConfig(**kwargs)


class TestSummary:
    def test_summary_reflects_enabled_facilities(self):
        system, _ = _observed(trace=True, sample_interval=1024,
                              monitor=True)
        summary = system.observability.summary()
        assert summary["trace"]["events_emitted"] > 0
        assert summary["samples"]["count"] > 0
        assert summary["monitor"]["checkpoints"] > 0
        assert "metrics" in summary

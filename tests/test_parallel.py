"""Tests for repro.parallel: executor determinism, caching, retry.

The load-bearing claims here are the ISSUE-5 acceptance criteria:
``jobs=1`` and ``jobs=N`` produce byte-identical merged output (and
identical per-point report digests), and a warm cache replays a sweep
with zero simulations.  Worker tasks used by the pooled tests must be
module-level functions (the ``spawn`` start method pickles references,
not code), which is why the toy tasks live at module scope.
"""

import dataclasses
import json
import os
import signal
import time

import pytest

from repro.analysis.experiments import ExperimentDefaults, tradeoff_sweep
from repro.analysis.sweeps import noc_latency_sweep
from repro.common.errors import (
    ConfigurationError,
    ShardTimeoutError,
    WorkerFailureError,
)
from repro.common.rng import DeterministicRng
from repro.ga.genetic import GaConfig, GeneticAlgorithm
from repro.obs import diag
from repro.parallel import (
    CACHE_SCHEMA,
    ResultCache,
    SweepExecutor,
    cache_key,
    config_digest,
    ga_population_evaluator,
)
from repro.parallel.tasks import (
    ga_fitness_task,
    make_run_payload,
    noc_latency_task,
)
from repro.resilience.retry import RetryPolicy

FAST = dataclasses.replace(ExperimentDefaults(), accesses=600, cycles=6000)


def square_task(payload):
    return {"value": payload["x"] ** 2}


def seeded_task(payload, task_seed=None):
    return {"x": payload["x"], "task_seed": task_seed}


def flaky_task(payload):
    """Fails on the first attempt, succeeds once the marker exists."""
    marker = payload["marker"]
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as fh:
            fh.write("attempted")
        raise RuntimeError("transient failure")
    return {"ok": True}


def always_fails_task(payload):
    raise ValueError("permanent failure")


def suicide_once_task(payload):
    """SIGKILLs its own pool worker the first time any task runs.

    Models the OOM killer taking a worker mid-chunk: the marker file is
    written *before* the kill, so retries (on the rebuilt pool) see it
    and succeed.
    """
    marker = payload["marker"]
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as fh:
            fh.write("dying")
        os.kill(os.getpid(), signal.SIGKILL)
    return {"survived": payload["x"]}


def sleepy_task(payload):
    """Wedges: sleeps far past any test's per-attempt timeout."""
    time.sleep(payload.get("delay", 60.0))
    return {"done": True}


@pytest.fixture(autouse=True)
def _clean_diag():
    diag.reset()
    yield
    diag.reset()


class TestSubstream:
    def test_substreams_and_parent_pairwise_distinct(self):
        parent = DeterministicRng(42)
        a = parent.substream(0)
        b = parent.substream(1)
        streams = [
            [rng.randint(0, 10**9) for _ in range(8)]
            for rng in (parent, a, b)
        ]
        assert streams[0] != streams[1]
        assert streams[0] != streams[2]
        assert streams[1] != streams[2]

    def test_reproducible_and_state_independent(self):
        """Derivation depends on (seed, task_id) only — not on how much
        of the parent stream was consumed (fork/spawn safety)."""
        first = DeterministicRng(7).substream(3).seed
        parent = DeterministicRng(7)
        for _ in range(100):
            parent.random()
        assert parent.substream(3).seed == first

    def test_negative_task_id_rejected(self):
        with pytest.raises(ValueError):
            DeterministicRng(0).substream(-1)


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        digest = config_digest("unit", {"x": 1})
        assert cache.get(digest) is None
        cache.put(digest, cache_key("unit", {"x": 1}), {"value": 2})
        assert cache.get(digest) == {"value": 2}
        assert cache.hits == 1 and cache.misses == 1

    def test_corrupt_entry_is_miss_and_removed(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        digest = config_digest("unit", {"x": 2})
        path = cache.path_for(digest)
        cache.put(digest, cache_key("unit", {"x": 2}), {"value": 4})
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("{truncated")
        assert cache.get(digest) is None
        assert not os.path.exists(path)

    def test_schema_mismatch_is_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        digest = config_digest("unit", {"x": 3})
        path = cache.path_for(digest)
        cache.put(digest, cache_key("unit", {"x": 3}), {"value": 9})
        with open(path, "r", encoding="utf-8") as fh:
            entry = json.load(fh)
        entry["cache_schema"] = CACHE_SCHEMA + 1
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(entry, fh)
        assert cache.get(digest) is None

    def test_digest_covers_kind_and_payload(self):
        base = config_digest("kind-a", {"x": 1})
        assert config_digest("kind-b", {"x": 1}) != base
        assert config_digest("kind-a", {"x": 2}) != base
        assert config_digest("kind-a", {"x": 1}) == base

    def test_prune_and_clear(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        for x in range(5):
            digest = config_digest("unit", {"x": x})
            cache.put(digest, cache_key("unit", {"x": x}), {"value": x})
        assert cache.prune(keep=2) == 3
        assert len(cache.entries()) == 2
        assert cache.clear() == 2
        assert cache.entries() == []

    def test_prune_requires_a_filter(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ResultCache(str(tmp_path)).prune()


class TestSweepExecutor:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SweepExecutor(jobs=0)

    def test_label_count_must_match(self):
        with pytest.raises(ConfigurationError):
            SweepExecutor().map(square_task, [{"x": 1}], labels=["a", "b"])

    def test_inline_and_pooled_agree(self):
        payloads = [{"x": x} for x in range(6)]
        inline = SweepExecutor(jobs=1).map(square_task, payloads)
        pooled = SweepExecutor(jobs=4).map(square_task, payloads)
        assert inline == pooled == [{"value": x * x} for x in range(6)]

    def test_task_seeds_are_jobs_invariant(self):
        payloads = [{"x": x} for x in range(5)]
        inline = SweepExecutor(jobs=1, seed=9).map(seeded_task, payloads)
        pooled = SweepExecutor(jobs=3, seed=9).map(seeded_task, payloads)
        assert inline == pooled
        seeds = [row["task_seed"] for row in inline]
        assert len(set(seeds)) == len(seeds)

    def test_warm_cache_does_not_shift_later_seeds(self, tmp_path):
        """The lifetime counter advances on cache hits, so a cached
        first batch leaves the second batch's seeds unchanged."""
        batch_a = [{"x": x} for x in range(3)]
        batch_b = [{"x": x} for x in range(10, 13)]
        cold = SweepExecutor(jobs=1, seed=5, cache=str(tmp_path))
        cold_a = cold.map(seeded_task, batch_a, kind="seeded")
        cold_b = cold.map(seeded_task, batch_b, kind="seeded")
        warm = SweepExecutor(jobs=1, seed=5, cache=str(tmp_path))
        warm_a = warm.map(seeded_task, batch_a, kind="seeded")
        warm_b = warm.map(seeded_task, batch_b, kind="seeded")
        assert warm_a == cold_a
        assert warm_b == cold_b
        assert warm.tasks_cached == 6 and warm.tasks_run == 0

    def test_retry_recovers_transient_failure(self, tmp_path):
        marker = str(tmp_path / "marker")
        executor = SweepExecutor(retry=RetryPolicy(max_attempts=2))
        [result] = executor.map(flaky_task, [{"marker": marker}])
        assert result == {"ok": True}
        assert executor.retries == 1
        assert diag.count("parallel.task_retry") == 1

    def test_exhausted_retries_raise_with_shard_identity(self):
        executor = SweepExecutor(retry=RetryPolicy(max_attempts=2))
        with pytest.raises(WorkerFailureError) as excinfo:
            executor.map(always_fails_task, [{"x": 1}], labels=["doomed"])
        assert excinfo.value.label == "doomed"
        assert excinfo.value.attempts == 2
        assert "permanent failure" in excinfo.value.last_error

    def test_lifecycle_events_emitted(self):
        SweepExecutor().map(square_task, [{"x": 1}, {"x": 2}])
        assert diag.count("parallel.task_submit") == 2
        assert diag.count("parallel.task_done") == 2
        events = diag.recent("parallel.task_done")
        assert [e.args_dict["task"] for e in events] == [0, 1]


class TestJobsDifferential:
    """ISSUE-5 acceptance: jobs=1 vs jobs=4 bit-identical outputs."""

    def test_sweep_merged_output_and_digests(self):
        merged_1 = noc_latency_sweep("gcc", FAST, latencies=(1, 4), jobs=1)
        merged_4 = noc_latency_sweep("gcc", FAST, latencies=(1, 4), jobs=4)
        assert merged_1 == merged_4
        payloads = []
        for latency in (1, 4):
            payload = make_run_payload("gcc", FAST)
            payload["noc_latency"] = latency
            payloads.append(payload)
        rows_1 = SweepExecutor(jobs=1).map(noc_latency_task, payloads)
        rows_4 = SweepExecutor(jobs=4).map(noc_latency_task, payloads)
        assert [r["digest"] for r in rows_1] == [r["digest"] for r in rows_4]

    def test_experiment_points_and_digests(self):
        points_1 = tradeoff_sweep("gcc", FAST, scales=(0.8, 1.4), jobs=1)
        points_4 = tradeoff_sweep("gcc", FAST, scales=(0.8, 1.4), jobs=4)
        assert points_1 == points_4
        assert all("digest" in p for p in points_1)

    def test_ga_generation(self):
        payload_base = make_run_payload("gcc", FAST)
        payload_base.update(base_ipc=1.0, window_cycles=512, seed=None)
        config = GaConfig(
            genome_length=len(FAST.spec.edges), max_gene=10,
            population_size=4, generations=1,
        )

        def one_generation(jobs):
            executor = SweepExecutor(jobs=jobs, seed=FAST.seed)
            ga = GeneticAlgorithm(config, DeterministicRng(11))
            ga.initialize()
            best = ga.step(
                map_evaluate=ga_population_evaluator(executor, payload_base)
            )
            return best, ga.history, sorted(ga._population)

        assert one_generation(1) == one_generation(4)

    def test_ga_fitness_digests_jobs_invariant(self):
        payload_base = make_run_payload("gcc", FAST)
        payload_base.update(base_ipc=1.0, window_cycles=512, seed=None)
        payloads = []
        for genome in ((2, 1, 1, 1, 1, 1, 1, 1, 1, 1),
                       (1, 1, 2, 1, 1, 1, 1, 1, 1, 1)):
            payload = dict(payload_base)
            payload["genome"] = list(genome)
            payloads.append(payload)
        rows_1 = SweepExecutor(jobs=1, seed=3).map(ga_fitness_task, payloads)
        rows_4 = SweepExecutor(jobs=4, seed=3).map(ga_fitness_task, payloads)
        assert rows_1 == rows_4


class TestRegistryMerge:
    """ISSUE-8 acceptance: the merged shard registries of a jobs=1 and
    a jobs=4 sweep render byte-identical OpenMetrics expositions."""

    def _payloads(self):
        payloads = []
        for latency in (1, 4):
            payload = make_run_payload("gcc", FAST)
            payload["noc_latency"] = latency
            payloads.append(payload)
        return payloads

    def test_merged_exposition_jobs_invariant(self):
        from repro.obs.export import render_openmetrics

        texts = {}
        for jobs in (1, 4):
            executor = SweepExecutor(jobs=jobs)
            rows = executor.map(noc_latency_task, self._payloads())
            # The registry doc is absorbed by the executor, never
            # returned to the driver (sweep JSON stays clean).
            assert all("obs_registry" not in row for row in rows)
            texts[jobs] = render_openmetrics(executor.merged_registry())
        assert texts[1] == texts[4]
        assert "sweep_points_total 2" in texts[1]
        assert "parallel_shards_merged 2" in texts[1]
        assert "sweep_point_cycles_bucket" in texts[1]
        # Worker count must not leak into the merged registry.
        assert "parallel_jobs" not in texts[1]

    def test_cached_replay_merges_identically(self, tmp_path):
        from repro.obs.export import render_openmetrics

        texts = []
        for _ in range(2):
            executor = SweepExecutor(jobs=1, cache=str(tmp_path))
            executor.map(noc_latency_task, self._payloads())
            texts.append(render_openmetrics(executor.merged_registry()))
        assert texts[0] == texts[1]


class TestBrokenPoolRebuild:
    def test_killed_pool_worker_rebuilds_and_preserves_output(self, tmp_path):
        """A pool worker SIGKILLed mid-chunk breaks the warm pool; the
        executor must rebuild it, retry only the affected shards, and
        still merge the jobs-invariant output."""
        from repro.parallel import executor as executor_mod

        marker = str(tmp_path / "killed")
        payloads = [{"x": i, "marker": marker} for i in range(6)]
        executor = SweepExecutor(jobs=2)
        results = executor.map(suicide_once_task, payloads)
        # merged output identical to what any healthy run produces
        assert results == [{"survived": i} for i in range(6)]
        assert os.path.exists(marker)
        # at least one shard was re-run after the pool broke...
        assert executor.retries >= 1
        assert diag.count("parallel.task_retry") == executor.retries
        # ...on a pool that was rebuilt, not the broken one
        assert executor_mod._POOL is not None
        assert not getattr(executor_mod._POOL, "_broken", False)


class TestShardTimeout:
    def test_wedged_shard_raises_typed_timeout(self):
        """Satellite contract: a shard exceeding its per-attempt budget
        surfaces a typed ShardTimeoutError with a watchdog-style dump,
        and the wedged pool is terminated."""
        from repro.parallel import executor as executor_mod

        executor = SweepExecutor(
            jobs=2, retry=RetryPolicy(max_attempts=1, timeout_seconds=0.5)
        )
        payloads = [{"delay": 30.0}, {"delay": 30.0}]
        with pytest.raises(ShardTimeoutError) as excinfo:
            executor.map(sleepy_task, payloads)
        err = excinfo.value
        assert err.task_index == 0
        assert err.timeout_seconds == 0.5
        assert err.dump["pool_terminated"] is True
        assert err.dump["attempts"] == 1
        assert err.dump["jobs"] == 2
        assert err.dump["label"] == err.label
        assert diag.count("parallel.shard_timeout") >= 1
        # the stuck workers were killed, not left burning a core
        assert executor_mod._POOL is None


class TestCacheHits:
    def test_second_sweep_runs_zero_simulations(self, tmp_path):
        """Warm-cache replay: identical output, zero task executions,
        verified through the diagnostics ring's event counts."""
        first = tradeoff_sweep(
            "gcc", FAST, scales=(0.8,), jobs=1, cache_dir=str(tmp_path)
        )
        first_runs = diag.count("parallel.task_done")
        assert first_runs > 0
        diag.reset()
        second = tradeoff_sweep(
            "gcc", FAST, scales=(0.8,), jobs=1, cache_dir=str(tmp_path)
        )
        assert second == first
        assert diag.count("parallel.task_done") == 0
        assert diag.count("parallel.cache_hit") == first_runs

"""Tests for shaper extensions: strict binning and timing jitter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ProtocolError
from repro.common.rng import DeterministicRng
from repro.core.bins import BinConfiguration, BinSpec
from repro.core.shaper import BinShaper


SPEC = BinSpec(edges=(1, 2, 4, 8), replenish_period=32)


class TestStrictBinning:
    def test_exact_bin_required(self):
        """Delta in bin 2 with only bin-0 credits must wait in strict
        mode (default mode would release immediately)."""
        config = BinConfiguration((2, 0, 0, 0))
        loose = BinShaper(SPEC, config)
        strict = BinShaper(SPEC, config, strict=True)
        # Delta 4 → bin 2; bin 0 credited.
        assert loose.can_release_real(4)
        assert not strict.can_release_real(4)

    def test_exact_bin_releases(self):
        strict = BinShaper(SPEC, BinConfiguration((0, 0, 2, 0)), strict=True)
        assert not strict.can_release_real(2)
        assert strict.can_release_real(4)
        assert strict.release_real(5) == 2

    def test_top_bin_fallback_prevents_deadlock(self):
        """Delta past the top edge may consume any credited bin."""
        strict = BinShaper(SPEC, BinConfiguration((1, 0, 0, 0)), strict=True)
        # Delta 20 → top bin (edge 8), empty; fallback to bin 0.
        assert strict.can_release_real(20)
        assert strict.release_real(20) == 0

    def test_strict_consumption_matches_observation(self):
        """Consumed bin == the bin the observed gap falls into."""
        strict = BinShaper(SPEC, BinConfiguration((2, 2, 2, 2)), strict=True)
        last = 0
        for gap in (1, 2, 4, 8):
            cycle = last + gap
            consumed = strict.release_real(cycle)
            assert consumed == SPEC.bin_of(gap)
            last = cycle

    def test_earliest_release_strict(self):
        strict = BinShaper(SPEC, BinConfiguration((0, 0, 2, 0)), strict=True)
        assert strict.earliest_real_release(1) == 4

    def test_earliest_release_fallback_case(self):
        """Only already-passed bins credited: fallback at the top edge."""
        strict = BinShaper(SPEC, BinConfiguration((2, 0, 0, 0)), strict=True)
        # Delta 4: bin 0 passed (strict: ineligible), nothing ahead
        # except the top-bin fallback at edge 8.
        assert strict.earliest_real_release(4) == 8


class TestJitter:
    def make(self, seed=9):
        return BinShaper(
            SPEC, BinConfiguration((4, 4, 4, 4)),
            jitter_rng=DeterministicRng(seed),
        )

    def test_jitter_delays_release(self):
        """Across seeds, some releases must be held past eligibility."""
        held = 0
        for seed in range(12):
            shaper = BinShaper(
                SPEC, BinConfiguration((0, 0, 0, 4)),
                jitter_rng=DeterministicRng(seed),
            )
            if not shaper.can_release_real(8):  # eligible, maybe held
                held += 1
        assert held > 0

    def test_release_after_hold_expires(self):
        shaper = self.make()
        cycle = 8
        while not shaper.can_release_real(cycle):
            cycle += 1
            assert cycle < 40, "jitter hold never expired"
        shaper.release_real(cycle)

    def test_release_before_hold_raises(self):
        for seed in range(20):
            shaper = BinShaper(
                SPEC, BinConfiguration((0, 0, 0, 4)),
                jitter_rng=DeterministicRng(seed),
            )
            if not shaper.can_release_real(8):
                with pytest.raises(ProtocolError):
                    shaper.release_real(8)
                return
        pytest.skip("no seed produced a hold (extremely unlikely)")

    def test_hold_rearmed_after_release(self):
        shaper = self.make(seed=3)
        cycle = 1
        releases = []
        while len(releases) < 4 and cycle < 200:
            shaper.replenish_if_due(cycle)
            if shaper.can_release_real(cycle):
                shaper.release_real(cycle)
                releases.append(cycle)
            cycle += 1
        assert len(releases) == 4

    def test_jitter_randomizes_timing(self):
        """Two seeds produce different release schedules."""

        def schedule(seed):
            shaper = BinShaper(
                SPEC, BinConfiguration((2, 2, 2, 2)),
                jitter_rng=DeterministicRng(seed),
            )
            out, cycle = [], 1
            while len(out) < 6 and cycle < 200:
                shaper.replenish_if_due(cycle)
                if shaper.can_release_real(cycle):
                    shaper.release_real(cycle)
                    out.append(cycle)
                cycle += 1
            return out

        assert schedule(1) != schedule(2)

    def test_no_jitter_without_rng(self):
        shaper = BinShaper(SPEC, BinConfiguration((4, 4, 4, 4)))
        # Deterministic: eligible the moment a credited edge is reached.
        assert shaper.can_release_real(1)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_credit_accounting_unchanged_by_jitter(self, seed):
        """Jitter shifts timing but never creates or destroys credits."""
        shaper = BinShaper(
            SPEC, BinConfiguration((2, 2, 2, 2)),
            jitter_rng=DeterministicRng(seed),
        )
        releases = 0
        for cycle in range(1, 33):
            if shaper.can_release_real(cycle):
                shaper.release_real(cycle)
                releases += 1
        assert releases <= 8
        assert sum(shaper.credits_remaining()) == 8 - releases


class TestJitterInSystem:
    def test_system_with_jitter_runs(self):
        from repro.sim import RequestShapingPlan, SystemBuilder
        from repro.workloads import make_trace

        builder = SystemBuilder(seed=11)
        builder.add_core(
            make_trace("gcc", 800),
            request_shaping=RequestShapingPlan(
                config=BinConfiguration((4,) * 10), jitter=True
            ),
        )
        report = builder.build().run(15000, stop_when_done=False)
        assert report.core(0).retired_instructions > 0

    def test_jitter_changes_release_schedule(self):
        from repro.sim import RequestShapingPlan, SystemBuilder
        from repro.workloads import make_trace

        def gaps(jitter):
            builder = SystemBuilder(seed=11)
            builder.add_core(
                make_trace("gcc", 800),
                request_shaping=RequestShapingPlan(
                    config=BinConfiguration((4,) * 10), jitter=jitter
                ),
            )
            report = builder.build().run(15000, stop_when_done=False)
            return report.core(0).request_shaped.gaps

        assert gaps(True) != gaps(False)

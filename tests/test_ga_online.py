"""Tests for the online GA tuner (Figure 8 protocol)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.bins import BinConfiguration, BinSpec
from repro.ga.online import OnlineGaTuner, ShaperHandle, TunerConfig
from repro.sim.system import RequestShapingPlan, SystemBuilder
from repro.workloads.spec import make_trace


def build_tunable_system(num_cores=2):
    spec = BinSpec()
    builder = SystemBuilder(seed=5).with_scheduler("priority")
    for i in range(num_cores):
        builder.add_core(
            make_trace("gcc" if i == 0 else "mcf", 4000, seed=i,
                       base_address=i << 33),
            request_shaping=RequestShapingPlan(
                config=BinConfiguration((4,) * 10), spec=spec
            ),
        )
    system = builder.build()
    handles = [
        ShaperHandle(
            name=f"req{i}",
            num_bins=10,
            reconfigure=system.request_paths[i].shaper.reconfigure,
        )
        for i in range(num_cores)
    ]
    return system, handles


class TestValidation:
    def test_requires_priority_scheduler(self):
        builder = SystemBuilder()
        builder.add_core(make_trace("gcc", 100))
        system = builder.build()
        with pytest.raises(ConfigurationError):
            OnlineGaTuner(system, [ShaperHandle("x", 10, lambda c: None)])

    def test_requires_handles(self):
        system, _ = build_tunable_system()
        with pytest.raises(ConfigurationError):
            OnlineGaTuner(system, [])

    def test_tuner_config_respects_register_width(self):
        with pytest.raises(ConfigurationError):
            TunerConfig(max_gene=2000)

    def test_genome_length(self):
        system, handles = build_tunable_system()
        tuner = OnlineGaTuner(system, handles)
        assert tuner.genome_length == 20


class TestApplyGenome:
    def test_splits_segments(self):
        system, handles = build_tunable_system()
        tuner = OnlineGaTuner(system, handles)
        genome = tuple(range(1, 21))
        tuner.apply_genome(genome)
        # Configs are double-buffered; force the boundary.
        for i in (0, 1):
            system.request_paths[i].shaper.replenish_if_due(
                system.request_paths[i].shaper.next_replenish_cycle
            )
        assert system.request_paths[0].shaper.config.credits == tuple(
            range(1, 11)
        )
        assert system.request_paths[1].shaper.config.credits == tuple(
            range(11, 21)
        )

    def test_dead_segment_repaired(self):
        system, handles = build_tunable_system()
        tuner = OnlineGaTuner(system, handles)
        genome = (0,) * 10 + (1,) * 10
        tuner.apply_genome(genome)  # must not raise: segment repaired

    def test_wrong_length_rejected(self):
        system, handles = build_tunable_system()
        tuner = OnlineGaTuner(system, handles)
        with pytest.raises(ConfigurationError):
            tuner.apply_genome((1, 2, 3))


class TestTune:
    def test_small_tuning_run_completes(self):
        system, handles = build_tunable_system()
        tuner = OnlineGaTuner(
            system,
            handles,
            config=TunerConfig(
                epoch_cycles=400, profile_cycles=200,
                population_size=4, generations=2,
            ),
        )
        result = tuner.tune()
        assert len(result.best_genome) == 20
        assert result.best_fitness > 0
        assert len(result.fitness_history) == 2
        assert result.config_phase_cycles > 0

    def test_exclusive_mode_cleared_after_profiling(self):
        system, handles = build_tunable_system()
        tuner = OnlineGaTuner(
            system, handles,
            config=TunerConfig(
                epoch_cycles=300, profile_cycles=150,
                population_size=4, generations=1,
            ),
        )
        tuner.tune()
        assert system.scheduler.exclusive_core is None

    def test_seeded_tune_not_worse_than_seed(self):
        """With elitism, the winner is at least as fit as the seed."""
        system, handles = build_tunable_system()
        config = TunerConfig(
            epoch_cycles=400, profile_cycles=200,
            population_size=4, generations=2,
        )
        tuner = OnlineGaTuner(system, handles, config=config)
        seed = (8,) * 20
        result = tuner.tune(seed_genomes=[seed])
        assert result.best_fitness <= max(result.fitness_history) + 1e9

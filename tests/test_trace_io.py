"""Tests for trace file persistence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError, TraceFormatError
from repro.cpu.trace import MemoryTrace, TraceRecord
from repro.cpu.trace_io import load_trace, save_trace, trace_to_string
from repro.workloads.spec import make_trace


def sample_trace():
    return MemoryTrace(
        [
            TraceRecord(12, 0x7F3A40, is_write=False),
            TraceRecord(0, 0x7F3A80, is_write=True),
            TraceRecord(500, 0x100, is_write=False),
        ],
        name="sample",
    )


class TestRoundTrip:
    def test_plain_file(self, tmp_path):
        original = sample_trace()
        path = tmp_path / "t.trace"
        save_trace(original, path)
        loaded = load_trace(path)
        assert loaded.name == "sample"
        assert loaded.records == original.records

    def test_gzip_file(self, tmp_path):
        original = sample_trace()
        path = tmp_path / "t.trace.gz"
        save_trace(original, path)
        loaded = load_trace(path)
        assert loaded.records == original.records
        # Verify it actually compressed (gzip magic bytes).
        assert path.read_bytes()[:2] == b"\x1f\x8b"

    def test_generated_trace_round_trips(self, tmp_path):
        original = make_trace("apache", 300, seed=9)
        path = tmp_path / "apache.trace"
        save_trace(original, path)
        loaded = load_trace(path)
        assert loaded.records == original.records
        assert loaded.name == "apache"

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10**6),
                st.integers(min_value=0, max_value=(1 << 48) - 1),
                st.booleans(),
            ),
            min_size=1,
            max_size=50,
        )
    )
    def test_string_round_trip(self, raw):
        import pathlib
        import tempfile

        records = [
            TraceRecord(gap, address, is_write=w) for gap, address, w in raw
        ]
        original = MemoryTrace(records, name="prop")
        with tempfile.TemporaryDirectory() as tmp:
            path = pathlib.Path(tmp) / "prop.trace"
            save_trace(original, path)
            assert load_trace(path).records == original.records


class TestFormat:
    def test_string_serialization(self):
        text = trace_to_string(sample_trace())
        assert text.startswith("# repro-trace v1 name=sample")
        assert "12 0x7f3a40 R" in text
        assert "0 0x7f3a80 W" in text

    def test_blank_lines_and_comments_ignored(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text(
            "# repro-trace v1 name=x\n\n# comment\n5 0x40 R\n"
        )
        loaded = load_trace(path)
        assert len(loaded) == 1
        assert loaded.name == "x"

    def test_name_falls_back_to_stem(self, tmp_path):
        path = tmp_path / "mystem.trace"
        path.write_text("5 0x40 R\n")
        assert load_trace(path).name == "mystem"


class TestErrors:
    @pytest.mark.parametrize(
        "line",
        ["5 0x40", "5 0x40 R extra", "x 0x40 R", "5 zz R", "5 0x40 Q"],
    )
    def test_malformed_lines_rejected_with_location(self, tmp_path, line):
        path = tmp_path / "bad.trace"
        path.write_text(line + "\n")
        with pytest.raises(ConfigurationError) as excinfo:
            load_trace(path)
        assert ":1:" in str(excinfo.value)

    @pytest.mark.parametrize(
        "line",
        ["5 0x40", "5 0x40 R extra", "x 0x40 R", "5 zz R", "5 0x40 Q"],
    )
    def test_typed_error_carries_source_and_line(self, tmp_path, line):
        """Every malformed shape raises TraceFormatError with context."""
        path = tmp_path / "bad.trace"
        path.write_text("# repro-trace v1\n5 0x40 R\n" + line + "\n")
        with pytest.raises(TraceFormatError) as excinfo:
            load_trace(path)
        assert excinfo.value.source == str(path)
        assert excinfo.value.line == 3
        assert ":3:" in str(excinfo.value)

    def test_negative_record_fields_carry_location(self, tmp_path):
        """TraceRecord's own range checks gain file/line context."""
        path = tmp_path / "bad.trace"
        path.write_text("-5 0x40 R\n")
        with pytest.raises(TraceFormatError) as excinfo:
            load_trace(path)
        assert excinfo.value.line == 1

    def test_corrupt_gzip_fails_typed(self, tmp_path):
        path = tmp_path / "bad.trace.gz"
        path.write_bytes(b"\x1f\x8b\x08\x00garbage-not-a-gzip-stream")
        with pytest.raises(TraceFormatError) as excinfo:
            load_trace(path)
        assert excinfo.value.source == str(path)
        assert excinfo.value.line == 0  # no single line to blame

    def test_binary_file_fails_typed(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_bytes(bytes(range(256)))
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_memory_trace_rejects_non_records(self):
        with pytest.raises(TraceFormatError) as excinfo:
            MemoryTrace(
                [TraceRecord(1, 0x40, is_write=False), ("not", "a", "rec")],
                name="mixed",
            )
        assert excinfo.value.line == 2
        assert "mixed" in excinfo.value.source

    def test_make_trace_validates_parameters(self):
        with pytest.raises(ConfigurationError):
            make_trace("gcc", 0)
        with pytest.raises(ConfigurationError):
            make_trace("gcc", 100, base_address=-1)

    def test_trace_format_error_is_configuration_error(self):
        # Existing callers that catch the broad class keep working.
        assert issubclass(TraceFormatError, ConfigurationError)

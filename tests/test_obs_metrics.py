"""Unit tests for metrics instruments and the interval sampler."""

import pytest

from repro.common.errors import ConfigurationError
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    IntervalSampler,
    MetricsRegistry,
)


class TestInstruments:
    def test_counter(self):
        c = Counter("grants")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ConfigurationError):
            c.inc(-1)

    def test_gauge(self):
        g = Gauge("depth")
        g.set(7)
        assert g.value == 7
        g.set(0.5)
        assert g.value == 0.5

    def test_histogram_buckets(self):
        h = Histogram("lat", edges=(10, 100))
        for value in (5, 10, 11, 1000):
            h.record(value)
        assert h.counts == [2, 1, 1]  # <=10, <=100, overflow
        assert h.total == 4
        assert h.mean() == pytest.approx((5 + 10 + 11 + 1000) / 4)

    def test_histogram_empty_mean(self):
        assert Histogram("lat", edges=(1,)).mean() == 0.0

    def test_histogram_rejects_bad_edges(self):
        with pytest.raises(ConfigurationError):
            Histogram("lat", edges=())
        with pytest.raises(ConfigurationError):
            Histogram("lat", edges=(5, 3))


class TestRegistry:
    def test_idempotent_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")

    def test_as_dict_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(3)
        registry.gauge("b").set(1.5)
        registry.histogram("c", edges=(10,)).record(4)
        snapshot = registry.as_dict()
        assert snapshot["a"] == 3
        assert snapshot["b"] == 1.5
        assert snapshot["c"] == {"edges": [10], "counts": [1, 0],
                                 "mean": 4.0}
        assert registry.names() == ["a", "b", "c"]


class TestIntervalSampler:
    def test_samples_at_boundaries(self):
        sampler = IntervalSampler(interval=10)
        state = {"v": 0}
        sampler.add_probe("v", lambda: state["v"])
        for cycle in range(25):
            state["v"] = cycle
            sampler.advance(cycle)
        assert sampler.samples == [(10, (10,)), (20, (20,))]

    def test_advance_catches_up_over_jumped_ticks(self):
        # A tick landing past several boundaries records all of them
        # (stamped at the boundary, valued at the tick) — matching what
        # the next-event engine produces via fill + advance.
        sampler = IntervalSampler(interval=10)
        sampler.add_probe("v", lambda: 7)
        sampler.advance(35)
        assert [c for c, _ in sampler.samples] == [10, 20, 30]

    def test_fill_then_advance_equals_per_cycle(self):
        # The engine contract: state is frozen across a skipped span,
        # so fill(target - 1) then advance(target) must reproduce the
        # per-cycle sample stream exactly.
        state = {"v": 3}
        per_cycle = IntervalSampler(interval=8)
        per_cycle.add_probe("v", lambda: state["v"])
        for cycle in range(40):
            per_cycle.advance(cycle)

        skipping = IntervalSampler(interval=8)
        skipping.add_probe("v", lambda: state["v"])
        skipping.advance(0)
        skipping.fill(38)     # skip 1..39: nothing changes mid-span
        skipping.advance(39)
        assert skipping.samples == per_cycle.samples

    def test_series_and_rows(self):
        sampler = IntervalSampler(interval=5)
        sampler.add_probe("a", lambda: 1)
        sampler.add_probe("b", lambda: 2)
        sampler.advance(10)
        assert sampler.series("b") == [(5, 2), (10, 2)]
        assert sampler.rows() == [[5, 1, 2], [10, 1, 2]]
        with pytest.raises(ConfigurationError):
            sampler.series("missing")

    def test_bounded_sample_history(self):
        sampler = IntervalSampler(interval=1, limit=3)
        sampler.add_probe("a", lambda: 0)
        sampler.advance(10)
        assert [c for c, _ in sampler.samples] == [8, 9, 10]
        assert sampler.dropped == 7

    def test_duplicate_probe_rejected(self):
        sampler = IntervalSampler(interval=4)
        sampler.add_probe("a", lambda: 0)
        with pytest.raises(ConfigurationError):
            sampler.add_probe("a", lambda: 1)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            IntervalSampler(interval=0)
        with pytest.raises(ConfigurationError):
            IntervalSampler(interval=4, limit=0)

"""Unit tests for Bi-directional Camouflage (BDC)."""

import pytest

from repro.common.rng import DeterministicRng
from repro.core.bidirectional import BidirectionalCamouflage
from repro.core.bins import BinConfiguration, BinSpec
from repro.core.request_shaper import RequestCamouflage
from repro.core.response_shaper import ResponseCamouflage
from repro.core.shaper import BinShaper
from repro.noc.link import SharedLink


def make_bdc(core_id=0, other_core=None):
    spec = BinSpec(edges=(1, 2, 4, 8), replenish_period=32)
    config = BinConfiguration((2, 2, 2, 2))
    req_link = SharedLink(num_ports=1, latency=1)
    resp_link = SharedLink(num_ports=1, latency=1)
    req = RequestCamouflage(
        core_id=core_id,
        shaper=BinShaper(spec, config),
        link=req_link,
        port=0,
        rng=DeterministicRng(1),
    )
    resp = ResponseCamouflage(
        core_id=other_core if other_core is not None else core_id,
        shaper=BinShaper(spec, config),
        link=resp_link,
        port=0,
    )
    return req, resp


class TestConstruction:
    def test_pairs_same_core(self):
        req, resp = make_bdc()
        bdc = BidirectionalCamouflage(req, resp)
        assert bdc.core_id == 0

    def test_rejects_mismatched_cores(self):
        req, resp = make_bdc(core_id=0, other_core=1)
        with pytest.raises(ValueError):
            BidirectionalCamouflage(req, resp)


class TestReconfiguration:
    def test_reconfigure_both_directions(self):
        req, resp = make_bdc()
        bdc = BidirectionalCamouflage(req, resp)
        new_req = BinConfiguration((5, 0, 0, 0))
        new_resp = BinConfiguration((0, 0, 0, 3))
        bdc.reconfigure(new_req, new_resp)
        # Double buffered: visible only after each shaper's boundary.
        req.shaper.replenish_if_due(32)
        resp.shaper.replenish_if_due(32)
        assert bdc.configs() == (new_req, new_resp)


class TestTelemetry:
    def test_fake_fraction_zero_initially(self):
        req, resp = make_bdc()
        bdc = BidirectionalCamouflage(req, resp)
        assert bdc.fake_traffic_fraction() == 0.0

    def test_fake_fraction_counts_both_directions(self):
        req, resp = make_bdc()
        bdc = BidirectionalCamouflage(req, resp)
        # Let both shapers idle through a period, then emit fakes.
        for cycle in range(1, 72):
            req.tick(cycle)
            resp.tick(cycle)
            while req.link.ports[0].occupancy:
                req.link.ports[0].pop()
            while resp.link.ports[0].occupancy:
                resp.link.ports[0].pop()
        assert req.fake_sent > 0 and resp.fake_sent > 0
        assert bdc.fake_traffic_fraction() == 1.0

#!/usr/bin/env python3
"""Covert-channel attack and defence (paper Algorithm 1, Figs 14/15).

A malicious sender encodes a secret key in its memory-traffic
envelope: bursts of cache-line writes for 1-bits, silence for 0-bits.
An observer on the memory bus recovers the key by counting requests
per pulse window.

This demo runs the attack twice — against an unprotected system (key
recovered perfectly) and against Request Camouflage (traffic envelope
flat, decoding collapses to coin flips).

Run:  python examples/covert_channel_demo.py
"""

from repro.analysis.experiments import covert_channel_experiment
from repro.analysis.format import ascii_series

KEY = 0x2AAA  # 16 bits: 0010 1010 1010 1010
BITS = 16
PULSE = 2500


def show(label: str, result: dict) -> None:
    counts = [float(c) for c in result["window_counts"]]
    print(f"--- {label} ---")
    print(f"  bus events         : {len(result['bus_events'])}")
    print(f"  traffic per pulse  : {ascii_series(counts, width=BITS)}")
    print(f"  key bits           : {''.join(map(str, result['key_bits']))}")
    print(f"  decoded bits       : {''.join(map(str, result['decoded_bits']))}")
    print(f"  bit error rate     : {result['bit_error_rate']:.2f}")
    print()


def main() -> None:
    print(f"secret key: {KEY:#06x} ({BITS} bits), "
          f"PULSE = {PULSE} cycles\n")

    unshaped = covert_channel_experiment(
        KEY, bits=BITS, shaped=False, pulse_cycles=PULSE
    )
    show("no shaping: the bus leaks the key", unshaped)

    shaped = covert_channel_experiment(
        KEY, bits=BITS, shaped=True, pulse_cycles=PULSE
    )
    show("Request Camouflage: fake traffic fills the silences", shaped)

    assert unshaped["bit_error_rate"] == 0.0
    assert shaped["bit_error_rate"] >= 0.3
    print("covert channel closed: decoding is no better than chance")


if __name__ == "__main__":
    main()

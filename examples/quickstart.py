#!/usr/bin/env python3
"""Quickstart: build a shaped system, run it, inspect the results.

Demonstrates the core public API in under a minute:

1. generate a workload trace (an mcf-like memory-intensive program),
2. attach Request Camouflage with a DESIRED target distribution,
3. run the full system (cores → caches → shaper → NoC → memory
   controller → DDR3 model → back),
4. verify the bus-visible request distribution matches the target, not
   the program.

Run:  python examples/quickstart.py
"""

from repro import (
    BinConfiguration,
    BinSpec,
    RequestShapingPlan,
    SystemBuilder,
)
from repro.analysis.format import format_distribution
from repro.workloads import make_trace


def main() -> None:
    spec = BinSpec()  # 10 bins, exponential edges 1..512 cycles
    # The DESIRED staircase from the paper's Figure 11: many credits
    # for fast inter-arrivals, few for slow ones.
    desired = BinConfiguration((10, 9, 8, 7, 6, 5, 4, 3, 2, 1))

    builder = SystemBuilder(seed=7)
    builder.add_core(
        make_trace("mcf", num_accesses=3000),
        request_shaping=RequestShapingPlan(
            config=desired, spec=spec, strict_binning=True
        ),
    )
    system = builder.build()

    print("running 40,000 cycles ...")
    report = system.run(40_000, stop_when_done=False)

    stats = report.core(0)
    print()
    print(f"retired instructions : {stats.retired_instructions}")
    print(f"IPC                  : {stats.ipc:.3f}")
    print(f"LLC misses           : {stats.llc_misses}")
    print(f"fake requests sent   : {stats.fake_requests_sent}")
    print(f"mean memory latency  : {stats.mean_memory_latency():.0f} cycles")
    print()
    print("what the program actually did (intrinsic inter-arrivals):")
    print(" ", format_distribution(stats.request_intrinsic.counts))
    print("what the memory bus saw (shaped inter-arrivals):")
    print(" ", format_distribution(stats.request_shaped.counts))
    print("the configured target:")
    print(" ", format_distribution(desired.credits))

    matches = stats.request_shaped.matches_target(
        desired.normalized(), tolerance=0.05
    )
    print()
    print(f"shaped distribution matches DESIRED: {matches}")
    assert matches, "shaping failed to match the target distribution"


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Online genetic-algorithm tuning of BDC bin configurations (Fig 8).

Builds a 4-core system — an adversary plus three protected victims —
with Bi-directional Camouflage (request shapers on the victims, a
response shaper on the adversary), then runs the paper's online GA
protocol: highest-priority-mode profiling followed by live child
evaluation windows, scored by average slowdown.

Run:  python examples/tune_with_ga.py
"""

from repro.analysis.experiments import (
    ExperimentDefaults,
    _build_mix,
    _mix_names,
    run_alone,
)
from repro.analysis.format import ascii_series
from repro.core.bins import BinConfiguration
from repro.ga.online import OnlineGaTuner, ShaperHandle, TunerConfig
from repro.sim.system import RequestShapingPlan, ResponseShapingPlan

DEFAULTS = ExperimentDefaults(accesses=4000, cycles=20000)


def main() -> None:
    names = _mix_names("gcc", "astar")
    print(f"workload: {names}\n")

    print("measuring unshaped alone IPCs (the slowdown reference) ...")
    alone_ipcs = [
        run_alone(name, DEFAULTS, core_slot=slot).core(0).ipc
        for slot, name in enumerate(names)
    ]
    print("  alone IPCs:", [round(i, 2) for i in alone_ipcs], "\n")

    spec = DEFAULTS.spec
    start = BinConfiguration((4,) * 10)  # a deliberately naive start
    system = _build_mix(
        names, DEFAULTS,
        request_plans={
            c: RequestShapingPlan(config=start, spec=spec) for c in (1, 2, 3)
        },
        response_plans={0: ResponseShapingPlan(config=start, spec=spec)},
        scheduler="priority",
        trace_repeat=30,
    )
    handles = [
        ShaperHandle(
            name=f"req-core{c}", num_bins=spec.num_bins,
            reconfigure=system.request_paths[c].shaper.reconfigure,
        )
        for c in (1, 2, 3)
    ] + [
        ShaperHandle(
            name="resp-core0", num_bins=spec.num_bins,
            reconfigure=system.response_paths[0].shaper.reconfigure,
        )
    ]

    tuner = OnlineGaTuner(
        system, handles,
        config=TunerConfig(
            epoch_cycles=4000, profile_cycles=1500, settle_cycles=4000,
            population_size=8, generations=6,
        ),
        seed=1,
        alone_ipcs=alone_ipcs,
    )
    print(f"tuning {tuner.genome_length} genes "
          f"(3 request shapers + 1 response shaper, 10 bins each) ...")
    result = tuner.tune()

    print()
    print("best average slowdown per generation:")
    for gen, fitness in enumerate(result.fitness_history):
        print(f"  gen {gen}: {fitness:.3f}")
    print("  " + ascii_series(result.fitness_history,
                              width=len(result.fitness_history)))
    print()
    print(f"winning genome: {result.best_genome}")
    print(f"CONFIG phase consumed {result.config_phase_cycles} cycles "
          "(the paper: INTERVAL x NUM_GENERATIONS, Figure 8)")


if __name__ == "__main__":
    main()

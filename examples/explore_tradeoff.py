#!/usr/bin/env python3
"""Explore the security/performance trade-off space (paper Figure 2).

Sweeps Camouflage bandwidth budgets for one workload, prints the
(IPC, mutual-information) frontier next to the constant-rate and
no-shaping anchors, and saves the configuration you would deploy as a
JSON file a hypervisor (or the CLI) can load back.

Run:  python examples/explore_tradeoff.py
"""

import tempfile
from pathlib import Path

from repro.analysis.experiments import (
    ExperimentDefaults,
    staircase_config,
    tradeoff_sweep,
)
from repro.analysis.format import format_table
from repro.core.bins import BinSpec
from repro.core.serialization import load_config, save_config

WORKLOAD = "omnetpp"
DEFAULTS = ExperimentDefaults(accesses=6000, cycles=60000)


def main() -> None:
    print(f"sweeping Camouflage budgets for {WORKLOAD} ...\n")
    points = tradeoff_sweep(
        WORKLOAD, DEFAULTS, scales=(0.6, 0.8, 1.0, 1.5, 2.0)
    )
    print(format_table(
        ["config", "ipc", "leak (bits/window)"],
        [[p["label"], p["ipc"], p["mi"]] for p in points],
    ))

    # Pick the fastest shaped point whose leak stays near zero; this
    # is the distribution a deployment would pin for the VM.
    shaped = [p for p in points if p["label"].startswith("camo")]
    secure = [p for p in shaped if p["mi"] < 0.1]
    chosen = max(secure or shaped, key=lambda p: p["ipc"])
    baseline = next(p for p in points if p["label"] == "no-shaping")
    print(f"\nchosen operating point: {chosen['label']} "
          f"(IPC {chosen['ipc']:.2f} = "
          f"{chosen['ipc'] / baseline['ipc']:.0%} of unshaped, "
          f"leak {chosen['mi']:.3f} bits/window)")

    # Persist it the way the hypervisor would.
    scale = float(chosen["label"].split("x")[-1])
    spec = BinSpec(replenish_period=512)
    base_rate = 1 / 18  # from the sweep's internal profiling
    config = staircase_config(spec, base_rate * scale)
    out = Path(tempfile.gettempdir()) / f"camouflage-{WORKLOAD}.json"
    save_config(spec, config, out)
    spec_back, config_back = load_config(out)
    print(f"saved deployable configuration to {out}")
    print(f"  edges: {spec_back.edges}")
    print(f"  credits: {config_back.credits}")
    assert config_back == config


if __name__ == "__main__":
    main()

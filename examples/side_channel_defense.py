#!/usr/bin/env python3
"""Side-channel defence with Response Camouflage (paper Figs 9/10).

An adversary VM times its own memory responses to figure out who it is
co-scheduled with: next to mcf (memory hog) its responses are slow,
next to astar they are fast.  RespC at the controller egress fixes the
adversary's response distribution so both worlds look identical.

Run:  python examples/side_channel_defense.py
"""

import numpy as np

from repro.analysis.experiments import (
    ExperimentDefaults,
    _mix_names,
    derive_response_config,
    run_mix,
)
from repro.security.attacks import corunner_distinguishability
from repro.security.leakage import accumulated_response_difference
from repro.sim.system import ResponseShapingPlan

ADVERSARY = "gcc"
DEFAULTS = ExperimentDefaults(accesses=3000, cycles=25000)


def main() -> None:
    print(f"adversary: {ADVERSARY}; victims: astar x3 vs mcf x3\n")

    print("1) unprotected (FR-FCFS) ...")
    base_astar = run_mix(_mix_names(ADVERSARY, "astar"), DEFAULTS)
    base_mcf = run_mix(_mix_names(ADVERSARY, "mcf"), DEFAULTS)
    d_base = corunner_distinguishability(
        base_astar.core(0).memory_latencies,
        base_mcf.core(0).memory_latencies,
    )
    drift = accumulated_response_difference(
        base_astar.core(0), base_mcf.core(0)
    )
    print(f"   adversary mean latency next to astar: "
          f"{base_astar.core(0).mean_memory_latency():.0f} cycles")
    print(f"   adversary mean latency next to mcf:   "
          f"{base_mcf.core(0).mean_memory_latency():.0f} cycles")
    print(f"   distinguishability (Cohen's d): {d_base:.2f}")
    print(f"   accumulated response-time drift: {abs(drift[-1]):.0f} cycles\n")

    print("2) protected with Response Camouflage ...")
    target = derive_response_config(
        _mix_names(ADVERSARY, "mcf"), 0, DEFAULTS, rate_scale=0.6
    )
    plan = {
        0: ResponseShapingPlan(
            config=target, spec=DEFAULTS.spec, strict_binning=True
        )
    }
    shaped_astar = run_mix(
        _mix_names(ADVERSARY, "astar"), DEFAULTS,
        response_plans=plan, scheduler="priority",
    )
    shaped_mcf = run_mix(
        _mix_names(ADVERSARY, "mcf"), DEFAULTS,
        response_plans=plan, scheduler="priority",
    )
    d_shaped = corunner_distinguishability(
        shaped_astar.core(0).memory_latencies,
        shaped_mcf.core(0).memory_latencies,
    )
    drift_shaped = accumulated_response_difference(
        shaped_astar.core(0), shaped_mcf.core(0)
    )
    print(f"   adversary mean latency next to astar: "
          f"{shaped_astar.core(0).mean_memory_latency():.0f} cycles")
    print(f"   adversary mean latency next to mcf:   "
          f"{shaped_mcf.core(0).mean_memory_latency():.0f} cycles")
    print(f"   distinguishability (Cohen's d): {d_shaped:.2f}")
    print(f"   accumulated response-time drift: "
          f"{abs(drift_shaped[-1]):.0f} cycles")
    print(f"   fake responses injected: "
          f"{shaped_astar.core(0).fake_responses_sent}\n")

    reduction = d_base / max(d_shaped, 1e-6)
    print(f"side channel attenuated {reduction:.1f}x "
          f"(drift {np.abs(drift).max():.0f} -> "
          f"{np.abs(drift_shaped).max():.0f} cycles)")
    assert d_shaped < d_base


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Pin/bus-monitoring defence with Request Camouflage (paper IV-E).

Threat model: a data-center operator with physical probes on the
memory bus watches when each request leaves the chip.  Program phases
(e.g. a crypto routine's key-dependent branches) modulate the request
inter-arrival distribution, so the trace leaks program behaviour.

This demo shows two *different programs* (gcc vs mcf — wildly
different intrinsic distributions) becoming indistinguishable on the
bus under ReqC, and quantifies the leak with windowed mutual
information.

Run:  python examples/pin_monitoring_defense.py
"""

from repro.analysis.experiments import (
    ExperimentDefaults,
    run_mix,
    staircase_config,
)
from repro.analysis.format import format_distribution
from repro.core.bins import BinSpec
from repro.security.mutual_information import windowed_rate_mi
from repro.sim.system import RequestShapingPlan

DEFAULTS = ExperimentDefaults(accesses=5000, cycles=60000)
SPEC = BinSpec(replenish_period=512)


def bus_times(histogram) -> list:
    out, t = [], 0
    for gap in histogram.gaps:
        t += gap
        out.append(t)
    return out


def run(program: str, shaped: bool):
    plans = None
    if shaped:
        # One predetermined distribution for everyone — chosen without
        # looking at any program, which is what makes it leak-free.
        # Provisioned above the most intense program's demand so real
        # traffic flows and fake traffic fills the rest; an
        # under-provisioned budget would throttle the program into
        # lockstep with the bus and leave nothing to measure.
        config = staircase_config(SPEC, events_per_cycle=1 / 12)
        plans = {0: RequestShapingPlan(config=config, spec=SPEC)}
    report = run_mix([program], DEFAULTS, request_plans=plans)
    return report


def main() -> None:
    for shaped in (False, True):
        label = "Request Camouflage" if shaped else "no shaping"
        print(f"=== {label} ===")
        for program in ("gcc", "mcf"):
            report = run(program, shaped)
            stats = report.core(0)
            mi = windowed_rate_mi(
                bus_times(stats.request_intrinsic),
                bus_times(stats.request_shaped),
                window_cycles=2048,
                total_cycles=report.cycles_run,
                bias_correction=True,
            )
            print(f"  {program:>4s} bus distribution: "
                  + format_distribution(stats.request_shaped.counts))
            print(f"       program->bus MI: {mi:.3f} bits/window "
                  f"(IPC {stats.ipc:.2f}, "
                  f"{stats.fake_requests_sent} fake requests)")
        print()

    print("Under shaping both programs show the same staircase on the "
          "bus\nand the MI between program behaviour and bus traffic is "
          "near zero.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Phase-adaptive shaping: detect program phases, retune the shaper.

The paper's online GA "reconfigures the request/response hardware bins
after a fixed amount of time or after a program phase change"
(section IV-C).  This demo wires the pieces together:

1. a phase-structured workload (quiet/busy alternation),
2. the hardware-plausible phase detector watching its demand,
3. shaper reconfiguration at each detected change — here a simple
   policy (scale the distribution to the new demand level) stands in
   for a full GA CONFIG phase to keep the demo fast.

Security note: *when* the reconfigurations happen is itself a
side-channel (one rate-choice worth of information per change —
`epoch_rate_leakage_bound`); the paper's answer is to tune once at
program start, or accept the bounded leak.

Run:  python examples/phase_adaptive_tuning.py
"""

from repro.analysis.experiments import staircase_config
from repro.analysis.format import ascii_series
from repro.core.bins import BinSpec
from repro.ga.phase import PhaseDetector, PhaseDetectorConfig
from repro.security.bounds import epoch_rate_leakage_bound
from repro.sim.system import RequestShapingPlan, SystemBuilder
from repro.workloads.phased import two_phase_trace

SPEC = BinSpec(replenish_period=512)
WINDOW = 2048


def main() -> None:
    trace, boundaries = two_phase_trace(
        quiet_gap=250.0, busy_gap=25.0, accesses_per_phase=800,
        repeats=2, seed=11,
    )
    print(f"workload: {len(trace)} accesses, ground-truth phase "
          f"boundaries at record indices {boundaries}\n")

    builder = SystemBuilder(seed=11)
    # Start generous: an over-tight initial budget would backpressure
    # the core down to the budget and hide its phases from the
    # detector (you cannot observe demand you refuse to admit).
    builder.add_core(
        trace,
        request_shaping=RequestShapingPlan(
            config=staircase_config(SPEC, 1 / 8), spec=SPEC
        ),
    )
    system = builder.build()
    shaper = system.request_paths[0].shaper
    detector = PhaseDetector(PhaseDetectorConfig(window_cycles=WINDOW))

    demand_series = []
    reconfigurations = []
    last_total = 0
    while system.current_cycle < 120_000 and not system.all_cores_done():
        system.run(WINDOW, stop_when_done=False)
        # Feed the detector this window's demand (intrinsic misses).
        total = system.request_paths[0].intrinsic_histogram.total
        window_demand = total - last_total
        last_total = total
        for _ in range(window_demand):
            detector.note_demand()
        if detector.tick(system.current_cycle):
            # Phase change: rescale the target to the new demand level
            # (a stand-in for a full GA CONFIG phase).
            rate = max(window_demand, 1) / WINDOW
            shaper.reconfigure(staircase_config(SPEC, rate * 1.2))
            reconfigurations.append(system.current_cycle)
        demand_series.append(window_demand)

    print("demand per window:  "
          + ascii_series([float(d) for d in demand_series], width=60))
    print(f"detected changes at cycles: {reconfigurations}")
    print(f"reconfigurations: {len(reconfigurations)}")
    bound = epoch_rate_leakage_bound(len(reconfigurations), 10)
    print(f"information the reconfiguration timing itself could leak: "
          f"<= {bound:.1f} bits (E x log2(R) with a 10-config palette)")

    report = system.report()
    stats = report.core(0)
    print(f"\nIPC {stats.ipc:.2f}, fake requests "
          f"{stats.fake_requests_sent}, real {stats.demand_requests}")
    assert len(reconfigurations) >= 2, "phase changes should be detected"


if __name__ == "__main__":
    main()

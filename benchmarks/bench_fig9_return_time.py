"""Figure 9 — accumulated response-time difference.

The adversary runs next to astar×3 and next to mcf×3.  Under FR-FCFS
the cumulative difference of its per-request response times grows with
every request (the co-runner is visible); under Response Camouflage
with one fixed target distribution the curve stays flat.
"""

import numpy as np

from repro.analysis.experiments import fig9_experiment
from repro.analysis.format import ascii_series, format_table
from repro.security.leakage import max_abs_drift

from conftest import BENCH_DEFAULTS


def test_fig9_accumulated_difference(benchmark, record_result):
    # omnetpp is the most response-active adversary, giving the densest
    # per-request curve (the paper plots ~160k requests).
    result = benchmark.pedantic(
        lambda: fig9_experiment("omnetpp", BENCH_DEFAULTS),
        rounds=1, iterations=1,
    )
    fr = result["frfcfs_difference"]
    camo = result["camouflage_difference"]
    rows = [
        ["fr-fcfs", float(fr[-1]), max_abs_drift(fr), len(fr)],
        ["camouflage", float(camo[-1]), max_abs_drift(camo), len(camo)],
    ]
    text = "\n".join(
        [
            format_table(
                ["scheduler", "final_drift_cycles", "max_drift_cycles",
                 "requests"],
                rows,
            ),
            "",
            "fr-fcfs curve:     " + ascii_series(np.abs(fr)),
            "camouflage curve:  " + ascii_series(np.abs(camo)),
            "(paper: FR-FCFS grows toward ~2e6 cycles; Camouflage flat)",
        ]
    )
    record_result("fig9_return_time", text)

    assert max_abs_drift(camo) < max_abs_drift(fr) / 2

"""Ablation — the Fletcher'14 epoch-rate design point vs CS vs Camouflage.

Paper section II-B describes the enhanced Ascend scheme (reference
[14]) as a middle point between a single constant rate and full
Camouflage: per-epoch rate choice buys performance and pays a bounded
``E × log2(R)`` bits of leakage.  This ablation places all three on
the same (IPC, leakage) plane for a bursty workload.
"""

from repro.analysis.experiments import run_alone, staircase_config
from repro.analysis.format import format_table
from repro.core.bins import BinSpec, constant_rate_config
from repro.security.bounds import epoch_rate_leakage_bound
from repro.security.mutual_information import windowed_rate_mi
from repro.sim.system import EpochShapingPlan, RequestShapingPlan, SystemBuilder
from repro.workloads.spec import make_trace

from conftest import LONG_DEFAULTS

SPEC = BinSpec(replenish_period=512)
BENCH = "apache"


def _times(histogram):
    out, t = [], 0
    for gap in histogram.gaps:
        t += gap
        out.append(t)
    return out


def _run(epoch_plan=None, request_plan=None):
    builder = SystemBuilder(seed=LONG_DEFAULTS.seed)
    builder.add_core(
        make_trace(BENCH, LONG_DEFAULTS.accesses, seed=LONG_DEFAULTS.seed),
        request_shaping=request_plan,
        epoch_shaping=epoch_plan,
    )
    system = builder.build()
    report = system.run(LONG_DEFAULTS.cycles, stop_when_done=False)
    return system, report


def test_ablation_epoch_cs(benchmark, record_result):
    def run():
        base = run_alone(BENCH, LONG_DEFAULTS)
        rate = base.core(0).request_intrinsic.total / max(1, base.cycles_run)

        out = {"no-shaping": {"ipc": base.core(0).ipc, "mi": None,
                              "bound": None}}

        # CS: single constant rate near the average demand.
        interval = SPEC.edges[0]
        for edge in SPEC.edges:
            if edge <= 1.0 / max(rate, 1e-9):
                interval = edge
        _sys, report = _run(
            request_plan=RequestShapingPlan(
                config=constant_rate_config(SPEC, interval), spec=SPEC
            )
        )
        stats = report.core(0)
        out["cs"] = {
            "ipc": stats.ipc,
            "mi": windowed_rate_mi(
                _times(stats.request_intrinsic),
                _times(stats.request_shaped),
                2048, report.cycles_run, bias_correction=True,
            ),
            "bound": 0.0,
        }

        # Epoch-rate (Fletcher'14): adapts per epoch, leaks E*log2(R).
        system, report = _run(epoch_plan=EpochShapingPlan(epoch_cycles=8192))
        path = system.request_paths[0]
        stats = report.core(0)
        out["epoch-cs"] = {
            "ipc": stats.ipc,
            "mi": windowed_rate_mi(
                _times(stats.request_intrinsic),
                _times(stats.request_shaped),
                2048, report.cycles_run, bias_correction=True,
            ),
            "bound": path.leakage_bound_bits(),
        }

        # Camouflage: predetermined staircase at the same average rate.
        _sys, report = _run(
            request_plan=RequestShapingPlan(
                config=staircase_config(SPEC, rate * 1.2), spec=SPEC
            )
        )
        stats = report.core(0)
        out["camouflage"] = {
            "ipc": stats.ipc,
            "mi": windowed_rate_mi(
                _times(stats.request_intrinsic),
                _times(stats.request_shaped),
                2048, report.cycles_run, bias_correction=True,
            ),
            "bound": 0.0,
        }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [label, r["ipc"],
         "-" if r["mi"] is None else round(r["mi"], 4),
         "-" if r["bound"] is None else round(r["bound"], 1)]
        for label, r in results.items()
    ]
    text = format_table(
        ["scheme", "ipc", "measured_mi_bits", "analytic_bound_bits"], rows
    )
    record_result("ablation_epoch_cs", text)

    # Ordering claims from section II-B:
    # epoch-CS outperforms CS (it adapts to phases) ...
    assert results["epoch-cs"]["ipc"] >= results["cs"]["ipc"] * 0.95
    # ... but pays a non-zero analytic leakage bound,
    assert results["epoch-cs"]["bound"] > 0
    # while Camouflage gets (at least) epoch-CS-level performance with
    # no rate-choice side channel.
    assert results["camouflage"]["ipc"] >= results["cs"]["ipc"]
    assert results["camouflage"]["mi"] < 0.3

"""Fast-engine speedups on low-intensity runs (BENCH_engine.json).

The cycle-skipping engines pay off exactly where the per-cycle loop
wastes the most work: single-program, low-intensity configurations of
the Figure 11/12 kind, where long compute gaps and sparse shaped
traffic leave most cycles with nothing to do.  This benchmark times
``System.run`` under all three engines — ``cycle`` (the reference),
``next_event``, and the columnar engine
(:mod:`repro.sim.columnar`, which keeps every station's horizon in
one numpy ledger and only runs stations that are due or fed) — checks
the reports stay bit-identical across all of them, and archives the
measurements as ``BENCH_engine.json`` at the repository root (plus
the usual text record under ``benchmarks/results``).

Acceptance targets, both on the headline low-intensity single-program
run: >= 3x for ``next_event``, >= 10x for ``columnar``.
"""

import json
import os
import pathlib
import time

from repro.core.bins import BinSpec, constant_rate_config, uniform_config
from repro.sim.system import (
    RequestShapingPlan,
    ResponseShapingPlan,
    SystemBuilder,
)
from repro.workloads import make_trace

from conftest import BENCH_DEFAULTS

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
SPEC = BinSpec()
SPEEDUP_TARGET = 3.0
COLUMNAR_SPEEDUP_TARGET = 10.0

_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
ACCESSES = int(400 * _SCALE) or 1
CYCLES = int(600_000 * _SCALE) or 1


def _single_program(name, shaping):
    def build():
        builder = SystemBuilder(seed=BENCH_DEFAULTS.seed)
        builder.add_core(make_trace(name, ACCESSES,
                                    seed=BENCH_DEFAULTS.seed),
                         **shaping)
        return builder.build()

    return build


CONFIGS = [
    # The headline Fig 11-style run: one quiet program under a
    # constant-rate (single-bin) request shaper.
    ("h264ref_cs512",
     _single_program("h264ref", {
         "request_shaping": RequestShapingPlan(
             constant_rate_config(SPEC, 512)),
     })),
    ("h264ref_reqc_uniform",
     _single_program("h264ref", {
         "request_shaping": RequestShapingPlan(uniform_config(SPEC, 2)),
     })),
    ("sjeng_bdc_cs512",
     _single_program("sjeng", {
         "request_shaping": RequestShapingPlan(
             constant_rate_config(SPEC, 512)),
         "response_shaping": ResponseShapingPlan(
             constant_rate_config(SPEC, 512)),
     })),
    ("h264ref_unshaped", _single_program("h264ref", {})),
]


def _best_of(builder, engine, rounds=3):
    """Fastest of ``rounds`` timed runs (reduces scheduler noise)."""
    best_seconds = None
    report = None
    for _ in range(rounds):
        system = builder()
        start = time.perf_counter()
        report = system.run(CYCLES, engine=engine)
        elapsed = time.perf_counter() - start
        if best_seconds is None or elapsed < best_seconds:
            best_seconds = elapsed
    return best_seconds, report


def test_engine_speedup(record_result):
    rows = []
    for name, builder in CONFIGS:
        base_seconds, base_report = _best_of(builder, "cycle")
        fast_seconds, fast_report = _best_of(builder, "next_event")
        col_seconds, col_report = _best_of(builder, "columnar")
        assert base_report == fast_report, f"{name}: reports diverge"
        assert base_report == col_report, f"{name}: columnar diverges"
        rows.append({
            "config": name,
            "cycles_run": base_report.cycles_run,
            "cycle_engine_seconds": round(base_seconds, 4),
            "next_event_seconds": round(fast_seconds, 4),
            "columnar_seconds": round(col_seconds, 4),
            "speedup": round(base_seconds / fast_seconds, 2),
            "columnar_speedup": round(base_seconds / col_seconds, 2),
            "identical_report": True,
        })

    headline = rows[0]
    payload = {
        "benchmark": "fast-engine wall-clock speedup over cycle engine",
        "simulated_cycles": CYCLES,
        "speedup_target": SPEEDUP_TARGET,
        "columnar_speedup_target": COLUMNAR_SPEEDUP_TARGET,
        "headline_config": headline["config"],
        "headline_speedup": headline["speedup"],
        "headline_columnar_speedup": headline["columnar_speedup"],
        "configs": rows,
    }
    (REPO_ROOT / "BENCH_engine.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    lines = [
        f"{r['config']:24s} next_event {r['speedup']:6.2f}x  "
        f"columnar {r['columnar_speedup']:6.2f}x  "
        f"({r['cycle_engine_seconds']:.3f}s -> "
        f"{r['next_event_seconds']:.3f}s -> "
        f"{r['columnar_seconds']:.3f}s, "
        f"{r['cycles_run']} cycles, bit-identical)"
        for r in rows
    ]
    record_result("engine_speedup", "\n".join(lines))

    if _SCALE >= 1.0:
        assert headline["speedup"] >= SPEEDUP_TARGET, (
            f"headline speedup {headline['speedup']}x below the "
            f"{SPEEDUP_TARGET}x target"
        )
        assert headline["columnar_speedup"] >= COLUMNAR_SPEEDUP_TARGET, (
            f"headline columnar speedup {headline['columnar_speedup']}x "
            f"below the {COLUMNAR_SPEEDUP_TARGET}x target"
        )

"""Table I — capability matrix of the timing-protection techniques.

The paper's Table I is qualitative; this bench derives each cell from
the *implemented* mechanisms by probing small simulations: does the
technique fix the bus-visible request stream (pin/bus monitoring
defence)?  does it fix the adversary-visible response stream (side/
covert channel defence)?
"""

import dataclasses

from repro.analysis.experiments import (
    _mix_names,
    derive_response_config,
    run_mix,
    staircase_config,
)
from repro.analysis.format import format_table
from repro.core.bins import BinSpec, constant_rate_config
from repro.security.attacks import corunner_distinguishability
from repro.sim.system import RequestShapingPlan, ResponseShapingPlan

from conftest import BENCH_DEFAULTS


def _request_stream_fixed(request_plan) -> bool:
    """Does the adversary-visible bus stream stop tracking intrinsic
    traffic when the program's behaviour changes?"""
    defaults = dataclasses.replace(BENCH_DEFAULTS, cycles=20000)
    reports = {}
    for bench in ("gcc", "mcf"):
        plans = {0: request_plan} if request_plan else None
        reports[bench] = run_mix([bench], defaults, request_plans=plans)
    gcc = reports["gcc"].core(0).request_shaped.frequencies()
    mcf = reports["mcf"].core(0).request_shaped.frequencies()
    tv = 0.5 * sum(abs(a - b) for a, b in zip(gcc, mcf))
    return tv < 0.15


def _response_channel_closed(scheduler, scheduler_kwargs=None,
                             respc=False) -> bool:
    """Can the adversary still distinguish astar from mcf co-runners?"""
    defaults = dataclasses.replace(BENCH_DEFAULTS, cycles=20000)
    plan = None
    if respc:
        target = derive_response_config(
            _mix_names("gcc", "mcf"), 0, defaults, rate_scale=0.6
        )
        plan = {0: ResponseShapingPlan(config=target, spec=defaults.spec)}
        scheduler = "priority"
    runs = {
        victim: run_mix(
            _mix_names("gcc", victim), defaults,
            response_plans=plan,
            scheduler=scheduler,
            scheduler_kwargs=scheduler_kwargs or {},
        )
        for victim in ("astar", "mcf")
    }
    d = corunner_distinguishability(
        runs["astar"].core(0).memory_latencies,
        runs["mcf"].core(0).memory_latencies,
    )
    return d < 0.35


def test_table1_capability_matrix(benchmark, record_result):
    spec = BinSpec()

    def build_table():
        reqc_plan = RequestShapingPlan(
            config=staircase_config(spec, 1 / 24), spec=spec
        )
        cs_plan = RequestShapingPlan(
            config=constant_rate_config(spec, 32), spec=spec
        )
        rows = [
            ["ReqC", _request_stream_fixed(reqc_plan), "No (by design)", "High"],
            ["RespC", "No (by design)",
             _response_channel_closed("frfcfs", respc=True), "High"],
            ["BDC", _request_stream_fixed(reqc_plan),
             _response_channel_closed("frfcfs", respc=True), "High"],
            ["TP", "No",
             _response_channel_closed("tp", {"turn_length": 128}),
             "Impacted by #domains"],
            ["CS", _request_stream_fixed(cs_plan), "No (by design)",
             "Low for bursty workloads"],
            ["FS", "No",
             _response_channel_closed("fs", {"interval": 24}),
             "Needs bank partitioning"],
        ]
        return rows

    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    text = format_table(
        ["technique", "stops pin/bus monitoring",
         "stops side/covert channel", "performance (paper)"],
        rows,
    )
    record_result("table1_techniques", text)

    by_name = {r[0]: r for r in rows}
    assert by_name["ReqC"][1] is True          # ReqC fixes the bus stream
    assert by_name["CS"][1] is True            # CS too (degenerate case)
    assert by_name["RespC"][2] is True         # RespC closes the response side
    assert by_name["BDC"][1] is True and by_name["BDC"][2] is True

"""Figure 2 — the security/performance trade-off space.

Sweeps Camouflage bandwidth scales between the constant-rate corner
and no shaping, reporting (IPC, windowed MI) per point.  The paper's
claim: Camouflage's points dominate CS (better performance at
comparable mutual information) and span a tunable curve up toward
no-shaping performance.
"""

from repro.analysis.experiments import tradeoff_sweep
from repro.analysis.format import format_table

from conftest import LONG_DEFAULTS


def test_fig2_tradeoff_space(benchmark, record_result):
    def run():
        points = {}
        for bench in ("apache", "omnetpp"):
            points[bench] = tradeoff_sweep(
                bench, LONG_DEFAULTS, scales=(0.5, 0.75, 1.0, 1.5, 2.0)
            )
        return points

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for bench, series in points.items():
        for p in series:
            rows.append([bench, p["label"], p["ipc"], p["mi"]])
    text = format_table(["workload", "config", "ipc", "mi_bits"], rows)
    record_result("fig2_tradeoff", text)

    for bench, series in points.items():
        by_label = {p["label"]: p for p in series}
        base = by_label["no-shaping"]
        cs = by_label["cs"]
        camo = [p for p in series if p["label"].startswith("camo")]
        # Every shaped point leaks far less than no shaping.
        assert all(p["mi"] < 0.5 * base["mi"] for p in camo)
        # The loosest Camouflage point outperforms the CS anchor while
        # staying in the low-leakage regime — the Fig 2 dominance claim.
        fastest = max(camo, key=lambda p: p["ipc"])
        assert fastest["ipc"] > cs["ipc"]
        # And shaping always costs something vs no shaping at all.
        assert all(p["ipc"] <= base["ipc"] * 1.02 for p in camo)

"""Ablation — baseline parameter sensitivity (fairness audit).

The Figure 13 comparison depends on TP's turn length and FS's slot
interval, which the paper does not specify.  These sweeps show where
our defaults sit on each baseline's own curve: the comparison uses
each baseline at or near its best operating point, so Camouflage's
margin is not an artefact of a crippled baseline.
"""

from repro.analysis.format import format_table
from repro.analysis.sweeps import (
    fs_interval_sweep,
    noc_latency_sweep,
    tp_turn_length_sweep,
)

from conftest import BENCH_DEFAULTS


def test_ablation_baseline_params(benchmark, record_result):
    def run():
        return {
            "tp": tp_turn_length_sweep("gcc", "mcf", BENCH_DEFAULTS),
            "fs": fs_interval_sweep("gcc", "mcf", BENCH_DEFAULTS),
            "noc": noc_latency_sweep("mcf", BENCH_DEFAULTS),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    sections = []
    sections.append("TP turn-length sweep (avg slowdown, default=128):")
    sections.append(format_table(
        ["turn_length", "avg_slowdown"],
        [[k, v] for k, v in results["tp"].items()],
    ))
    sections.append("")
    sections.append("FS interval sweep (default=20; slip>5% = leaky config):")
    sections.append(format_table(
        ["interval", "avg_slowdown", "slip_fraction"],
        [[k, v["slowdown"], v["slip_fraction"]]
         for k, v in results["fs"].items()],
    ))
    sections.append("")
    sections.append("NoC latency sweep (single-core mean memory latency):")
    sections.append(format_table(
        ["hop_latency", "mean_latency"],
        [[k, v] for k, v in results["noc"].items()],
    ))
    record_result("ablation_baseline_params", "\n".join(sections))

    # TP fairness: the Figure-13 default (128) is within 15% of the
    # best turn length in the sweep.
    tp_best = min(results["tp"].values())
    assert results["tp"][128] <= tp_best * 1.15

    # FS transparency: because dummy fill keeps the aggregate load
    # constant, tighter intervals are *also* leak-free and perform
    # monotonically better until the channel saturates — FS at its
    # tightest is effectively a generous distributed constant-rate
    # shaper.  The sweep documents this openly: the Fig-13 default
    # (20) sits mid-curve, and the honest headline (EXPERIMENTS.md)
    # reports Camouflage ~at parity with a well-provisioned FS rather
    # than the paper's 1.32x.
    fs_slowdowns = [results["fs"][k]["slowdown"]
                    for k in sorted(results["fs"])]
    assert fs_slowdowns == sorted(fs_slowdowns), (
        "FS slowdown should grow monotonically with the interval"
    )
    # Every swept interval stayed essentially leak-free under dummy fill.
    assert all(v["slip_fraction"] < 0.10 for v in results["fs"].values())

    # Substrate sanity: end-to-end latency grows with hop latency by
    # ~2 cycles per added hop cycle (request + response traversals).
    lat = results["noc"]
    delta = lat[16] - lat[1]
    assert 1.5 * (16 - 1) <= delta <= 3.0 * (16 - 1)
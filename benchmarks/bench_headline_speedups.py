"""Abstract / conclusion headline — Camouflage vs CS, TP, FS.

"Camouflage on average improves program throughput by 1.12x, 1.5x, and
1.32x compared with CS, TP, and FS respectively."  Aggregates the
Fig 12 sweep (vs CS) and Fig 13 pairs (vs TP / FS).
"""

from repro.analysis.experiments import headline_speedups
from repro.analysis.format import format_table

from conftest import BENCH_DEFAULTS


def test_headline_speedups(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: headline_speedups(BENCH_DEFAULTS),
        rounds=1, iterations=1,
    )
    rows = [
        ["vs constant shaper (CS)", result["vs_constant_shaper"], 1.12],
        ["vs temporal partitioning (TP)",
         result["vs_temporal_partitioning"], 1.5],
        ["vs fixed service (FS+banks)", result["vs_fixed_service"], 1.32],
    ]
    text = format_table(
        ["comparison", "measured_geomean_speedup", "paper"], rows
    )
    record_result("headline_speedups", text)

    # Shape claims: Camouflage beats every baseline on average.  The
    # margin over FS (paper: 1.32x) is narrower here (~1.05-1.15x):
    # our FS baseline gets a near-fair-share slot interval and our
    # 3-copy victim mixes load a single DDR3 channel heavily, where
    # every constant-injection scheme converges toward its bandwidth
    # budget (see EXPERIMENTS.md).
    assert result["vs_constant_shaper"] > 1.0
    assert result["vs_temporal_partitioning"] > 1.3
    assert result["vs_fixed_service"] > 1.0

"""Ablation — replenishment-window size vs short-term leakage.

Paper section IV-B4: "short term information leakage can be mitigated
by reducing the size of the replenishment window."  The fake-traffic
compensation is one window delayed, so a window comparable to the
covert channel's PULSE leaves a decodable echo; shrinking it below
PULSE closes the channel.

This ablation sweeps the window size against the Algorithm-1 covert
sender and reports the recovered-bit error rate per size.
"""

from repro.analysis.experiments import covert_channel_experiment
from repro.analysis.format import format_table

from conftest import BENCH_DEFAULTS

PULSE = 3000
WINDOWS = (512, 1024, 2048, 4096)


def test_ablation_replenish_window(benchmark, record_result):
    def run():
        out = {}
        for window in WINDOWS:
            result = covert_channel_experiment(
                0x2AAAAAAA, bits=32, shaped=True, pulse_cycles=PULSE,
                defaults=BENCH_DEFAULTS, replenish_period=window,
            )
            out[window] = result["bit_error_rate"]
        return out

    ber_by_window = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [window, f"{window / PULSE:.2f}", ber]
        for window, ber in ber_by_window.items()
    ]
    text = format_table(
        ["replenish_window", "window/PULSE", "attack_bit_error_rate"], rows
    )
    text += (
        "\n(0.5 = chance; the paper's IV-B4 mitigation predicts shorter"
        "\nwindows leak less short-term information)"
    )
    record_result("ablation_replenish_window", text)

    # Short windows must close the channel...
    assert ber_by_window[512] >= 0.3
    # ...and windows must never make decoding *better* than the
    # shortest one by a wide margin (the mitigation is monotone-ish;
    # allow slack for threshold-decoder quantization noise).
    assert ber_by_window[4096] <= 0.65
    assert min(ber_by_window.values()) >= 0.15

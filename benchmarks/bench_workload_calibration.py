"""Workload-calibration table — validating the trace substitution.

DESIGN.md §2 claims the synthetic generators preserve the qualitative
properties the paper's conclusions rest on.  This bench measures every
benchmark's actual memory behaviour on the simulator and asserts the
claims, producing the calibration table the substitution is judged by.
"""

from repro.analysis.calibration import (
    calibrate_suite,
    check_substitution_claims,
)
from repro.analysis.format import format_table

from conftest import BENCH_DEFAULTS


def test_workload_calibration(benchmark, record_result):
    calibrations = benchmark.pedantic(
        lambda: calibrate_suite(BENCH_DEFAULTS), rounds=1, iterations=1
    )
    rows = [
        [c.name, c.ipc, c.llc_mpki, c.requests_per_kilocycle,
         c.row_hit_rate, c.mean_latency, c.burstiness]
        for c in sorted(
            calibrations.values(),
            key=lambda c: -c.requests_per_kilocycle,
        )
    ]
    claims = check_substitution_claims(calibrations)
    text = format_table(
        ["benchmark", "ipc", "llc_mpki", "req/kcycle", "row_hit_rate",
         "mean_latency", "burstiness"],
        rows,
    )
    text += "\n\nsubstitution claims:\n" + format_table(
        ["claim", "held"],
        [[claim, held] for claim, held in claims.items()],
    )
    record_result("workload_calibration", text)

    for claim, held in claims.items():
        assert held, f"substitution claim failed: {claim}"
"""Section II-B scalability — TP degrades with domain count, Camouflage
does not.

"Temporal Partitioning applications based on several security domains
is feasible, however, it is not scalable if hundreds of applications
don't trust each other ... each of them only receives 1/100 of the
memory bandwidth."  This bench sweeps the number of mutually
distrusting cores and compares TP's average slowdown against per-core
Request Camouflage (and the unprotected FR-FCFS contention floor).
"""

from repro.analysis.experiments import scalability_experiment
from repro.analysis.format import format_table

from conftest import BENCH_DEFAULTS

CORE_COUNTS = (2, 4, 8)


def test_scalability_with_domain_count(benchmark, record_result):
    results = benchmark.pedantic(
        lambda: scalability_experiment(
            "gcc", BENCH_DEFAULTS, core_counts=CORE_COUNTS
        ),
        rounds=1, iterations=1,
    )
    rows = [
        [n, r["frfcfs"], r["tp"], r["camouflage"]]
        for n, r in results.items()
    ]
    text = format_table(
        ["cores (=domains)", "fr-fcfs slowdown", "tp slowdown",
         "camouflage slowdown"],
        rows,
    )
    record_result("scalability_domains", text)

    # TP's slowdown must grow substantially with the domain count...
    assert results[8]["tp"] > 1.5 * results[2]["tp"]
    # ...while Camouflage's stays within contention-growth territory.
    camo_growth = results[8]["camouflage"] / results[2]["camouflage"]
    tp_growth = results[8]["tp"] / results[2]["tp"]
    assert camo_growth < tp_growth
    # Once more than two domains contend, Camouflage beats TP outright
    # (at n=2 the turn tax is small and roughly matches the
    # fake-traffic tax — the crossover the paper's Figure 2 sketches).
    for n in (4, 8):
        assert results[n]["camouflage"] < results[n]["tp"]

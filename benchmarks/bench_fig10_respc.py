"""Figure 10 — Response Camouflage performance across 11 adversaries.

Each adversary runs in w(ADV, astar×3) shaped to the w(ADV, mcf×3)
response distribution (Fig 10a) and vice versa (Fig 10b).  The paper
reports ADVERSARY-performance and overall-throughput slowdowns near
1.0 (geomean 1.03/1.02 for astar, 0.97/1.03 for mcf — shaping to the
slower context costs a little; shaping to the faster context can even
speed the adversary up via priority boosts).
"""

from repro.analysis.experiments import respc_context_experiment
from repro.analysis.format import format_table
from repro.common.util import geometric_mean
from repro.workloads.spec import BENCHMARK_NAMES

from conftest import BENCH_DEFAULTS


def test_fig10_respc_slowdowns(benchmark, record_result):
    def run():
        return {
            adversary: respc_context_experiment(adversary, BENCH_DEFAULTS)
            for adversary in BENCHMARK_NAMES
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for adversary in BENCHMARK_NAMES:
        r = results[adversary]
        rows.append(
            [
                adversary,
                r["astar"]["adversary_slowdown"],
                r["astar"]["throughput_slowdown"],
                r["mcf"]["adversary_slowdown"],
                r["mcf"]["throughput_slowdown"],
            ]
        )
    geo = [
        "GEOMEAN",
        geometric_mean([r[1] for r in rows]),
        geometric_mean([r[2] for r in rows]),
        geometric_mean([r[3] for r in rows]),
        geometric_mean([r[4] for r in rows]),
    ]
    rows.append(geo)
    text = format_table(
        ["adversary", "astar_ctx adv_slowdown", "astar_ctx throughput",
         "mcf_ctx adv_slowdown", "mcf_ctx throughput"],
        rows,
    )
    record_result("fig10_respc", text)

    # Paper shape: modest cost — geomean slowdowns stay near 1.
    assert 0.8 < geo[1] < 2.0
    assert 0.8 < geo[2] < 1.6
    assert 0.7 < geo[3] < 1.6
    assert 0.8 < geo[4] < 1.6

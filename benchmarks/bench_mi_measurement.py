"""Section IV-B2 — mutual-information measurements.

Paper numbers for w(ADVERSARY, bzip): no shaping 4.4; CS without fake
0.002; ReqC without fake 0.006; CS with fake 0; ReqC with fake 0.002.
Absolute values depend on run length and estimator, but the ordering
and the ~0.1% leakage claim are reproduced: shaping with fake traffic
leaks a vanishing fraction of the unshaped stream's information.
"""

from repro.analysis.experiments import measure_mi_suite
from repro.analysis.format import format_table

from conftest import LONG_DEFAULTS


def test_mi_suite(benchmark, record_result):
    results = benchmark.pedantic(
        lambda: measure_mi_suite(defaults=LONG_DEFAULTS),
        rounds=1, iterations=1,
    )
    order = ["no_shaping", "cs_no_fake", "reqc_no_fake", "cs_fake",
             "reqc_fake"]
    paper = {
        "no_shaping": 4.4, "cs_no_fake": 0.002, "reqc_no_fake": 0.006,
        "cs_fake": 0.0, "reqc_fake": 0.002,
    }
    rows = [
        [name, results[name]["paired"], results[name]["windowed"],
         paper[name]]
        for name in order
    ]
    text = format_table(
        ["scheme", "paired_mi_bits", "windowed_mi_bits", "paper_mi"],
        rows, precision=4,
    )
    record_result("mi_measurement", text)

    base = results["no_shaping"]["paired"]
    assert base > 1.0
    # The paper's headline: Camouflage leaks <= ~0.1-1% of the
    # unshaped information once fake traffic is on.
    assert results["cs_fake"]["paired"] <= 0.02 * base
    assert results["reqc_fake"]["paired"] <= 0.05 * base
    # ReqC leaks slightly more than CS (the tunable-tradeoff claim).
    assert results["reqc_fake"]["paired"] >= results["cs_fake"]["paired"]

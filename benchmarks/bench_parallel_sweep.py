"""Parallel sweep executor throughput (BENCH_parallel.json).

Times the 12-point Figure-2 trade-off sweep three ways — sequential
(``jobs=1``), across 4 worker processes (``jobs=4``), and replayed
from a warm result cache — and checks the two ISSUE-5 contracts along
the way: the parallel output is **identical** to the sequential
reference, and the cached replay performs **zero** simulations.

Acceptance target: >= 2.0x wall-clock speedup at ``jobs=4``.  The
speedup is hardware-dependent (it needs 4 free cores to materialise),
so the archived ``BENCH_parallel.json`` records ``cpu_count`` and a
``target_applicable`` flag next to the honest measurements; the
target is only asserted when the flag is true (>= 4 CPUs visible).
On a 1-CPU machine the honest result is a *slowdown* — 4 spawned
interpreters time-slicing one core plus pickling overhead — and the
file says so instead of pretending the target was met.  The executor
itself amortises the fixed costs (warm persistent pool, chunked
submissions, factored-out shared spec; see
:mod:`repro.parallel.executor`), which this bench measures end to end.
"""

import json
import multiprocessing
import os
import pathlib
import time

from repro.analysis.experiments import tradeoff_sweep
from repro.obs import diag
from repro.parallel import SweepExecutor

from conftest import BENCH_DEFAULTS

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
SPEEDUP_TARGET = 2.0
JOBS = 4

_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: 10 staircase scales + the CS anchor + the no-shaping anchor = 12
#: points (11 simulation tasks plus the shared base run).
SCALES = (0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.2, 1.4, 1.7, 2.0)


def _timed_sweep(jobs, cache_dir=None):
    executor = SweepExecutor(jobs=jobs, seed=BENCH_DEFAULTS.seed,
                             cache=cache_dir)
    start = time.perf_counter()
    points = tradeoff_sweep("apache", BENCH_DEFAULTS, scales=SCALES,
                            executor=executor)
    elapsed = time.perf_counter() - start
    return elapsed, points, executor


def test_parallel_sweep_speedup(record_result, tmp_path):
    diag.reset()
    sequential_seconds, reference, _ = _timed_sweep(jobs=1)
    parallel_seconds, parallel_points, _ = _timed_sweep(jobs=JOBS)
    assert parallel_points == reference, "jobs=4 diverged from jobs=1"
    # Second pooled sweep: the persistent pool is now warm, so this is
    # the steady-state cost every sweep after the first one pays (the
    # spawn + import price is once per process, not once per map).
    warm_seconds, warm_points, _ = _timed_sweep(jobs=JOBS)
    assert warm_points == reference, "warm-pool jobs=4 diverged"

    cache_dir = str(tmp_path / "cache")
    _timed_sweep(jobs=1, cache_dir=cache_dir)  # warm the cache
    cached_seconds, cached_points, cached_executor = _timed_sweep(
        jobs=1, cache_dir=cache_dir
    )
    assert cached_points == reference, "cache replay diverged"
    assert cached_executor.tasks_run == 0, "warm cache still simulated"

    speedup = sequential_seconds / parallel_seconds
    warm_speedup = sequential_seconds / warm_seconds
    cpu_count = multiprocessing.cpu_count()
    target_applicable = cpu_count >= JOBS
    payload = {
        "benchmark": "parallel sweep executor (12-point Fig 2 sweep)",
        "points": len(reference),
        "jobs": JOBS,
        "cpu_count": cpu_count,
        "sequential_seconds": round(sequential_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "parallel_warm_seconds": round(warm_seconds, 4),
        "speedup": round(speedup, 2),
        "warm_speedup": round(warm_speedup, 2),
        "speedup_target": SPEEDUP_TARGET,
        # Honesty flag: the target needs >= JOBS real cores.  A 1-CPU
        # runner records its (slower) numbers with the flag false
        # rather than asserting a speedup the hardware cannot deliver.
        "target_applicable": target_applicable,
        "cache_replay_seconds": round(cached_seconds, 4),
        "cache_replay_tasks_run": cached_executor.tasks_run,
        "cache_replay_tasks_cached": cached_executor.tasks_cached,
        "identical_output": True,
    }
    (REPO_ROOT / "BENCH_parallel.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    record_result("parallel_sweep", "\n".join([
        f"points: {len(reference)} (10 staircase scales + CS + no-shaping)",
        f"sequential (jobs=1):  {sequential_seconds:.3f}s",
        f"parallel   (jobs={JOBS}):  {parallel_seconds:.3f}s "
        f"-> {speedup:.2f}x (target {SPEEDUP_TARGET}x "
        f"{'applies' if target_applicable else 'not applicable'}, "
        f"{cpu_count} CPUs visible)",
        f"parallel, warm pool:  {warm_seconds:.3f}s "
        f"-> {warm_speedup:.2f}x (steady state: spawn paid once "
        f"per process)",
        f"cache replay:         {cached_seconds:.3f}s "
        f"({cached_executor.tasks_cached} hits, 0 simulations)",
        "parallel output identical to sequential: yes",
    ]))

    if _SCALE >= 1.0 and target_applicable:
        best = max(speedup, warm_speedup)
        assert best >= SPEEDUP_TARGET, (
            f"jobs={JOBS} speedup {best:.2f}x below the "
            f"{SPEEDUP_TARGET}x target on a {cpu_count}-CPU machine"
        )


if __name__ == "__main__":
    # Allow running outside pytest (spawn-safe entry point).
    import tempfile

    class _Printer:
        def __call__(self, name, text):
            print(f"\n===== {name} =====\n{text}\n")

    with tempfile.TemporaryDirectory() as tmp:
        test_parallel_sweep_speedup(_Printer(), pathlib.Path(tmp))

"""Shared infrastructure for the benchmark harness.

Every module in this directory regenerates one table or figure of the
paper (see DESIGN.md section 3).  Results are printed in the same
rows/series the paper reports and archived under
``benchmarks/results/`` so EXPERIMENTS.md can be refreshed from a run.
"""

import dataclasses
import os
import pathlib

import pytest

from repro.analysis.experiments import ExperimentDefaults

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Full-size experiment defaults for the harness.  Scale down with
#: REPRO_BENCH_SCALE=0.25 for a quick smoke run.
_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

BENCH_DEFAULTS = ExperimentDefaults(
    accesses=int(4000 * _SCALE) or 1,
    cycles=int(30000 * _SCALE) or 1,
    seed=42,
)

#: Longer runs for statistics-hungry experiments (MI estimation).
LONG_DEFAULTS = dataclasses.replace(
    BENCH_DEFAULTS,
    accesses=int(8000 * _SCALE) or 1,
    cycles=int(90000 * _SCALE) or 1,
)


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir):
    """Print a result block and archive it under benchmarks/results."""

    def _record(name: str, text: str) -> None:
        print(f"\n===== {name} =====\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _record

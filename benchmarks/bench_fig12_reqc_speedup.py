"""Figure 12 — ReqC speedup over a static rate limiter.

Same average bandwidth budget per benchmark; the constant shaper
serializes bursts while Camouflage's bins let them pass.  Paper:
geomean 1.12x, with bursty/intense programs (mcf 1.48x, omnetpp 1.47x)
gaining most and smooth ones near 1.0x.
"""

from repro.analysis.experiments import reqc_speedup_experiment
from repro.analysis.format import format_table
from repro.common.util import geometric_mean
from repro.workloads.spec import BENCHMARK_NAMES

from conftest import BENCH_DEFAULTS

PAPER_SPEEDUPS = {
    "astar": 1.05, "bzip": 1.00, "gcc": 1.11, "h264ref": 1.01,
    "gobmk": 1.03, "libquantum": 1.00, "sjeng": 1.05, "mcf": 1.48,
    "hmmer": 1.12, "omnetpp": 1.47, "apache": 1.09,
}


def test_fig12_speedup_over_constant_shaper(benchmark, record_result):
    def run():
        return {
            bench: reqc_speedup_experiment(bench, BENCH_DEFAULTS)
            for bench in BENCHMARK_NAMES
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for bench in BENCHMARK_NAMES:
        r = results[bench]
        rows.append(
            [bench, int(r["interval"]), r["cs_ipc"], r["camouflage_ipc"],
             r["speedup"], PAPER_SPEEDUPS[bench]]
        )
    speedups = [results[b]["speedup"] for b in BENCHMARK_NAMES]
    geo = geometric_mean(speedups)
    rows.append(["GEOMEAN", "-", "-", "-", geo, 1.12])
    text = format_table(
        ["benchmark", "budget_interval", "cs_ipc", "camouflage_ipc",
         "speedup", "paper_speedup"],
        rows,
    )
    record_result("fig12_reqc_speedup", text)

    # Shape claims: Camouflage wins on average and never loses to CS
    # beyond run-to-run noise (saturated programs where neither shaper
    # binds tightly show +/-5% jitter).
    assert all(s >= 0.94 for s in speedups)
    assert geo > 1.02

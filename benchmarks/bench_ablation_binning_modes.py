"""Ablation — release-rule variants: default vs strict vs jittered.

DESIGN.md calls out three release rules for the bin shaper:

* **default** — any credited bin with edge ≤ Δ may be consumed
  (paper III-A1's wording); fastest, loosest distribution match.
* **strict** — only the exact bin containing Δ (Figure 11 accuracy
  mode); tightest match, extra stalling.
* **jitter** — default plus randomized holds inside the eligible
  bin's interval (the IV-B4 fine-grained mitigation).

The ablation quantifies the trade: distribution accuracy (TV distance
to the DESIRED staircase), program performance (IPC), and the
fine-grained leak (windowed MI at single-period granularity, where
the jitter is supposed to help).
"""

from repro.analysis.experiments import run_mix
from repro.analysis.format import format_table
from repro.core.bins import BinConfiguration, BinSpec
from repro.security.mutual_information import windowed_rate_mi
from repro.sim.system import RequestShapingPlan

from conftest import BENCH_DEFAULTS

DESIRED = BinConfiguration((10, 9, 8, 7, 6, 5, 4, 3, 2, 1))
SPEC = BinSpec()


def _times(histogram):
    out, t = [], 0
    for gap in histogram.gaps:
        t += gap
        out.append(t)
    return out


def test_ablation_binning_modes(benchmark, record_result):
    def run():
        out = {}
        for label, kwargs in (
            ("default", {}),
            ("strict", {"strict_binning": True}),
            ("jitter", {"jitter": True}),
        ):
            report = run_mix(
                ["astar"], BENCH_DEFAULTS,
                request_plans={
                    0: RequestShapingPlan(config=DESIRED, spec=SPEC, **kwargs)
                },
            )
            stats = report.core(0)
            tv = 0.5 * sum(
                abs(a - b)
                for a, b in zip(
                    stats.request_shaped.frequencies(), DESIRED.normalized()
                )
            )
            fine_mi = windowed_rate_mi(
                _times(stats.request_intrinsic),
                _times(stats.request_shaped),
                window_cycles=SPEC.replenish_period,
                total_cycles=report.cycles_run,
                bias_correction=True,
            )
            out[label] = {"tv": tv, "ipc": stats.ipc, "fine_mi": fine_mi}
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [label, r["tv"], r["ipc"], r["fine_mi"]]
        for label, r in results.items()
    ]
    text = format_table(
        ["release rule", "tv_to_desired", "ipc", "single-period MI (bits)"],
        rows, precision=4,
    )
    record_result("ablation_binning_modes", text)

    # Strict mode matches the target best.
    assert results["strict"]["tv"] <= results["default"]["tv"]
    assert results["strict"]["tv"] < 0.05
    # Jitter must not destroy the distribution or performance.
    assert results["jitter"]["tv"] < 0.3
    assert results["jitter"]["ipc"] > 0.5 * results["default"]["ipc"]

"""Figure 8 / section IV-C — online genetic-algorithm convergence.

Runs the CONFIG phase of the online GA on a live BDC system
(w(ADVERSARY, astar)) and reports the best average slowdown per
generation.  The paper runs 20 generations of 20-30 children at 20k
cycles each; we run a scaled version and check the search improves on
its random start and does not lose its best (elitism).
"""

from repro.analysis.experiments import _build_mix, derive_request_config
from repro.analysis.format import ascii_series, format_table
from repro.core.bins import BinConfiguration
from repro.ga.online import OnlineGaTuner, ShaperHandle, TunerConfig
from repro.sim.system import RequestShapingPlan, ResponseShapingPlan

from conftest import BENCH_DEFAULTS


def test_ga_convergence(benchmark, record_result):
    def run():
        names = ["gcc", "astar", "astar", "astar"]
        spec = BENCH_DEFAULTS.spec
        request_plans = {
            core: RequestShapingPlan(
                config=BinConfiguration((4,) * 10), spec=spec
            )
            for core in (1, 2, 3)
        }
        response_plans = {
            0: ResponseShapingPlan(
                config=BinConfiguration((4,) * 10), spec=spec
            )
        }
        system = _build_mix(
            names, BENCH_DEFAULTS,
            request_plans=request_plans,
            response_plans=response_plans,
            scheduler="priority",
        )
        handles = [
            ShaperHandle(
                name=f"req-core{core}", num_bins=spec.num_bins,
                reconfigure=system.request_paths[core].shaper.reconfigure,
            )
            for core in (1, 2, 3)
        ] + [
            ShaperHandle(
                name="resp-core0", num_bins=spec.num_bins,
                reconfigure=system.response_paths[0].shaper.reconfigure,
            )
        ]
        tuner = OnlineGaTuner(
            system, handles,
            config=TunerConfig(
                epoch_cycles=4000, profile_cycles=1500,
                population_size=10, generations=8,
            ),
            seed=BENCH_DEFAULTS.seed,
        )
        return tuner.tune()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    history = result.fitness_history
    rows = [[g, f] for g, f in enumerate(history)]
    text = "\n".join(
        [
            format_table(["generation", "best_avg_slowdown"], rows),
            "",
            "convergence: " + ascii_series(history, width=len(history)),
            f"best genome: {result.best_genome}",
            f"config-phase cycles: {result.config_phase_cycles} "
            "(paper: INTERVAL x 20 generations)",
        ]
    )
    record_result("ga_convergence", text)

    # The search must improve on its first generation and keep its best.
    assert min(history) <= history[0]
    assert result.best_fitness == min(history)
    assert result.best_fitness < 3.0  # a sane slowdown for this mix

"""Figures 14/15 — covert channel before and after Camouflage.

The Algorithm-1 sender encodes the paper's two keys (0x2AAAAAAA and
0x01010101) in memory bursts.  Unshaped, a bus observer recovers every
bit; under ReqC the per-pulse traffic envelope is flat and decoding
collapses to chance.
"""

from repro.analysis.experiments import covert_channel_experiment
from repro.analysis.format import ascii_series, format_table
from repro.security.attacks import bit_error_rate, decode_covert_key_matched

from conftest import BENCH_DEFAULTS

KEYS = {"fig14_key_0x2AAAAAAA": 0x2AAAAAAA, "fig15_key_0x01010101": 0x01010101}


def test_fig14_15_covert_channel(benchmark, record_result):
    def run():
        out = {}
        for name, key in KEYS.items():
            out[name] = {
                shaped: covert_channel_experiment(
                    key, bits=32, shaped=shaped, pulse_cycles=3000,
                    defaults=BENCH_DEFAULTS,
                )
                for shaped in (False, True)
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    lines = []
    for name, pair in results.items():
        for shaped in (False, True):
            r = pair[shaped]
            label = "camouflage" if shaped else "no shaping"
            matched_ber = bit_error_rate(
                decode_covert_key_matched(r["bus_events"], 3000, 32),
                r["key_bits"],
            )
            rows.append(
                [name, label, len(r["bus_events"]), r["bit_error_rate"],
                 matched_ber]
            )
            lines.append(
                f"{name} [{label}] traffic/pulse: "
                + ascii_series(list(map(float, r["window_counts"])), width=32)
            )
    text = format_table(
        ["figure", "scheme", "bus_events", "threshold_ber",
         "matched_filter_ber"],
        rows,
    ) + "\n\n" + "\n".join(lines)
    record_result("fig14_15_covert", text)

    for name, pair in results.items():
        assert pair[False]["bit_error_rate"] == 0.0, "unshaped must decode"
        assert pair[True]["bit_error_rate"] >= 0.3, "shaped must not decode"
        # The stronger phase-searching attacker must fail too.
        matched = bit_error_rate(
            decode_covert_key_matched(pair[True]["bus_events"], 3000, 32),
            pair[True]["key_bits"],
        )
        assert matched >= 0.25, "shaping must defeat the matched filter"

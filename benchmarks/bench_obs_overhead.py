"""Observability overhead gate + traced smoke run (CI entry point).

Three claims back the "near-zero overhead when disabled" contract of
``repro.obs`` (docs/observability.md):

1. A system built *with* an observability config whose facilities are
   all off runs within a few percent of a system built without one —
   the hot path pays one cached boolean per tick and one
   ``tracer.enabled`` branch per would-be emission, nothing else.
2. The engine self-profiler stays inside the same budget even when
   *enabled* (its accounting is closed-form run bracketing plus
   per-skip/per-station integer increments), and never perturbs the
   run report.
3. A fully traced run works end to end and exports a valid Chrome
   trace (uploaded as a CI artifact for eyeballing in Perfetto).

Timing uses best-of-N minima (the standard way to cut scheduler noise
out of a wall-clock comparison).  Run with ``--check`` to turn the
overhead bound into an exit code::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py \
        --check --trace-out trace.json

This is a standalone script, not a pytest-benchmark case: CI needs
the exit code and the artifact without the benchmarking harness.
"""

import argparse
import gc
import json
import sys
import time

from repro.core.bins import BinConfiguration
from repro.sim.system import (
    RequestShapingPlan,
    ResponseShapingPlan,
    SystemBuilder,
)
from repro.workloads import make_trace

DESIRED = BinConfiguration((10, 9, 8, 7, 6, 5, 4, 3, 2, 1))


def _builder(seed=42, accesses=2000):
    builder = SystemBuilder(seed=seed)
    builder.add_core(
        make_trace("gcc", accesses, seed=seed),
        request_shaping=RequestShapingPlan(DESIRED),
        response_shaping=ResponseShapingPlan(DESIRED),
    )
    builder.add_core(
        make_trace("mcf", accesses, seed=seed + 1, base_address=1 << 26)
    )
    return builder


def _best_of(make_system, cycles, repeats):
    best = float("inf")
    report = None
    for _ in range(repeats):
        system = make_system()
        start = time.perf_counter()
        report = system.run(cycles, stop_when_done=False)
        best = min(best, time.perf_counter() - start)
    return best, report


def _paired_overhead(make_a, make_b, cycles, repeats):
    """Median per-round b/a time ratio, plus each side's best time.

    Rounds interleave the two builds (a b a b ...) and the overhead is
    the *median of per-round ratios*: slow drift (thermal, frequency,
    noisy-neighbour CI runners) hits both halves of a round equally
    and cancels in the ratio, where block timing or cross-round minima
    would not.
    """
    makers = (make_a, make_b)

    def one(index):
        system = makers[index]()
        # Collect the previous system's garbage *outside* the timed
        # region and keep the collector quiet inside it: GC pauses
        # triggered by a prior run's dead objects are the dominant
        # noise source at this run length.
        gc.collect()
        gc.disable()
        try:
            start = time.process_time()
            reports[index] = system.run(cycles, stop_when_done=False)
            elapsed = time.process_time() - start
        finally:
            gc.enable()
        bests[index] = min(bests[index], elapsed)
        return elapsed

    ratios = []
    bests = [float("inf"), float("inf")]
    reports = [None, None]
    for _ in range(repeats):
        # a b b a: linear drift within the round cancels in the ratio.
        a1 = one(0)
        b1 = one(1)
        b2 = one(1)
        a2 = one(0)
        ratios.append((b1 + b2) / (a1 + a2))
    ratios.sort()
    mid = len(ratios) // 2
    median = (
        ratios[mid]
        if len(ratios) % 2
        else (ratios[mid - 1] + ratios[mid]) / 2
    )
    return median, bests, reports


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    # Defaults tuned for noisy shared runners: many short paired
    # rounds give a tighter median than a few long ones.
    parser.add_argument("--cycles", type=int, default=20_000)
    parser.add_argument("--repeats", type=int, default=13,
                        help="a-b-b-a timing rounds (median of ratios)")
    parser.add_argument("--threshold", type=float, default=3.0,
                        help="max disabled-obs overhead, percent")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when the bound is exceeded")
    parser.add_argument("--trace-out", default=None,
                        help="also run fully traced and write a Chrome "
                             "trace JSON here")
    args = parser.parse_args(argv)

    median_ratio, (plain_time, off_time), (plain_report, off_report) = (
        _paired_overhead(
            lambda: _builder().build(),
            # Config attached, every facility off: the disabled-path
            # cost.
            lambda: _builder().with_observability().build(),
            args.cycles, args.repeats,
        )
    )
    if off_report != plain_report:
        print("FAIL: disabled observability perturbed the report",
              file=sys.stderr)
        return 1

    overhead = (median_ratio - 1.0) * 100.0
    print(f"plain run:        {plain_time * 1e3:8.1f} ms (best of "
          f"{args.repeats})")
    print(f"obs attached/off: {off_time * 1e3:8.1f} ms")
    print(f"disabled-obs overhead: {overhead:+.2f}% "
          f"(median of {args.repeats} paired ratios, "
          f"bound: {args.threshold:.1f}%)")

    # The engine self-profiler's claim is stronger than "off is free":
    # even *enabled* it is closed-form run bracketing (plus per-skip
    # and per-station increments on the fast engines), so it must fit
    # in the same budget as the disabled-obs path — and must not
    # perturb the report.
    prof_ratio, (_, prof_time), (unprof_report, prof_report) = (
        _paired_overhead(
            lambda: _builder().with_observability().build(),
            lambda: _builder().with_observability(profile=True).build(),
            args.cycles, args.repeats,
        )
    )
    if prof_report != unprof_report or prof_report != plain_report:
        print("FAIL: the profiler perturbed the report", file=sys.stderr)
        return 1
    prof_overhead = (prof_ratio - 1.0) * 100.0
    print(f"profiler enabled: {prof_time * 1e3:8.1f} ms")
    print(f"profiler-enabled overhead: {prof_overhead:+.2f}% "
          f"(vs obs attached/off, bound: {args.threshold:.1f}%)")

    if args.trace_out:
        traced_time, traced_report = _best_of(
            lambda: _builder().with_observability(
                trace=True, sample_interval=1024, monitor=True
            ).build(),
            args.cycles, 1,
        )
        if traced_report != plain_report:
            print("FAIL: tracing perturbed the report", file=sys.stderr)
            return 1
        system = _builder().with_observability(trace=True).build()
        system.run(args.cycles, stop_when_done=False)
        tracer = system.observability.tracer
        tracer.write_chrome(args.trace_out)
        with open(args.trace_out, encoding="utf-8") as fh:
            payload = json.load(fh)
        categories = {e["cat"] for e in payload["traceEvents"]
                      if e.get("ph") == "i"}
        print(f"traced run:       {traced_time * 1e3:8.1f} ms "
              f"(trace+samples+monitor)")
        print(f"chrome trace: {args.trace_out} "
              f"({len(payload['traceEvents'])} events, "
              f"categories: {sorted(categories)})")
        required = {"shaper", "memctrl", "dram", "noc"}
        if not required <= categories:
            print(f"FAIL: trace missing categories "
                  f"{sorted(required - categories)}", file=sys.stderr)
            return 1

    if args.check and overhead > args.threshold:
        print(f"FAIL: disabled-obs overhead {overhead:.2f}% exceeds "
              f"{args.threshold:.1f}%", file=sys.stderr)
        return 1
    if args.check and prof_overhead > args.threshold:
        print(f"FAIL: profiler-enabled overhead {prof_overhead:.2f}% "
              f"exceeds {args.threshold:.1f}%", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

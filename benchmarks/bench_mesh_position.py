"""Mesh NoC — position-dependent leakage, closed by ReqC everywhere.

On a 2D mesh the adversary's route to the memory controller shares
links with some victims more than others, so the side channel's
strength depends on *where* the victim sits.  Request Camouflage
shapes traffic before injection, so it closes the channel for every
position — the property that makes it a NoC defence as well as a
memory-controller defence (the paper's SC1 claim).
"""

import dataclasses

import numpy as np

from repro.analysis.format import format_table
from repro.analysis.sweeps import mesh_position_leakage

from conftest import BENCH_DEFAULTS

DEFAULTS = dataclasses.replace(
    BENCH_DEFAULTS, accesses=max(1, BENCH_DEFAULTS.accesses // 2),
    cycles=max(1, BENCH_DEFAULTS.cycles // 2),
)


def test_mesh_position_leakage(benchmark, record_result):
    def run():
        return {
            "unshaped": mesh_position_leakage(DEFAULTS, shaped=False),
            "shaped": mesh_position_leakage(DEFAULTS, shaped=True),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    positions = sorted(results["unshaped"])
    rows = [
        [p, results["unshaped"][p], results["shaped"][p]]
        for p in positions
    ]
    text = format_table(
        ["victim position", "distinguishability (unshaped)",
         "distinguishability (ReqC)"],
        rows,
    )
    record_result("mesh_position", text)

    unshaped = np.array([results["unshaped"][p] for p in positions])
    shaped = np.array([results["shaped"][p] for p in positions])
    # The open channel is position-dependent and strong somewhere...
    assert unshaped.max() > 0.3
    # ...and shaping attenuates the channel across positions on
    # average, including at the worst (most exposed) position.
    assert shaped.mean() < unshaped.mean()
    assert shaped.max() < unshaped.max()
"""Figure 13 — BDC vs Temporal Partitioning vs Fixed Service.

Workloads w(ADV, astar×3) and w(ADV, mcf×3) for every adversary;
program-average slowdown (IPC alone / IPC shared) per protection
technique.  Paper shape: Camouflage ≪ TP, Camouflage ≤ FS (headline:
1.5x better than TP, 1.32x better than FS on average).
"""

from repro.analysis.experiments import bdc_comparison
from repro.analysis.format import format_table
from repro.common.util import geometric_mean
from repro.workloads.spec import BENCHMARK_NAMES

from conftest import BENCH_DEFAULTS

#: A representative subset of adversaries keeps the harness tractable;
#: set REPRO_BENCH_ALL=1 for all 11 (the paper's full sweep).
import os

ADVERSARIES = (
    BENCHMARK_NAMES
    if os.environ.get("REPRO_BENCH_ALL")
    else ("astar", "gcc", "mcf", "omnetpp", "apache", "sjeng")
)


def test_fig13_bdc_vs_tp_vs_fs(benchmark, record_result):
    def run():
        out = {}
        for victim in ("astar", "mcf"):
            for adversary in ADVERSARIES:
                out[(adversary, victim)] = bdc_comparison(
                    adversary, victim, BENCH_DEFAULTS
                )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    for victim in ("astar", "mcf"):
        rows = []
        for adversary in ADVERSARIES:
            r = results[(adversary, victim)]
            rows.append(
                [f"{adversary}+{victim}x3", r["tp_slowdown"],
                 r["fs_slowdown"], r["camouflage_slowdown"]]
            )
        geo = [
            "GEOMEAN",
            geometric_mean([r[1] for r in rows]),
            geometric_mean([r[2] for r in rows]),
            geometric_mean([r[3] for r in rows]),
        ]
        rows.append(geo)
        text = format_table(
            ["workload", "tp_slowdown", "fs+banks_slowdown",
             "camouflage_slowdown"],
            rows,
        )
        record_result(f"fig13_bdc_{victim}", text)

        # Paper shape: Camouflage beats TP decisively and is at least
        # competitive with FS + bank partitioning.
        assert geo[3] < geo[1], "Camouflage must beat TP"
        assert geo[3] < geo[2] * 1.15, "Camouflage ~>= FS"

"""Figure 11 — shaping arbitrary request distributions into DESIRED.

Every one of the 11 applications' intrinsic request inter-arrival
distributions (all wildly different) is shaped by ReqC into the same
DESIRED staircase.  The paper: "we find all the applications have the
same distribution as the DESIRED one".
"""

from repro.analysis.experiments import run_mix
from repro.analysis.format import format_distribution
from repro.core.bins import BinConfiguration
from repro.sim.system import RequestShapingPlan
from repro.workloads.spec import BENCHMARK_NAMES

from conftest import BENCH_DEFAULTS

DESIRED = BinConfiguration((10, 9, 8, 7, 6, 5, 4, 3, 2, 1))


def test_fig11_distribution_accuracy(benchmark, record_result):
    def run():
        out = {}
        for bench in BENCHMARK_NAMES:
            report = run_mix(
                [bench], BENCH_DEFAULTS,
                request_plans={
                    0: RequestShapingPlan(
                        config=DESIRED, spec=BENCH_DEFAULTS.spec,
                        strict_binning=True,
                    )
                },
            )
            stats = report.core(0)
            out[bench] = (
                stats.request_intrinsic.counts,
                stats.request_shaped,
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["intrinsic distributions (top) vs shaped (bottom per app):", ""]
    tv_distances = {}
    for bench, (intrinsic_counts, shaped) in results.items():
        lines.append(format_distribution(intrinsic_counts, label=bench))
        lines.append(format_distribution(shaped.counts, label="  shaped"))
        tv = 0.5 * sum(
            abs(a - b)
            for a, b in zip(shaped.frequencies(), DESIRED.normalized())
        )
        tv_distances[bench] = tv
        lines.append(f"  TV distance to DESIRED: {tv:.4f}")
        lines.append("")
    lines.append(
        "DESIRED     " + format_distribution(DESIRED.credits, label="")
    )
    record_result("fig11_distributions", "\n".join(lines))

    # Paper claim: every application matches the DESIRED staircase.
    for bench, tv in tv_distances.items():
        assert tv < 0.05, f"{bench} diverges from DESIRED (tv={tv:.3f})"
